"""Fast path vs reference interpreter: bit-identity differentials.

The table-driven fast path (:mod:`repro.sim.decode` plus the batched
event loop) promises *bit*-identity with the reference interpreter —
same modeled times, same metrics registry, same trace, same error text —
on every app, under every chaos scenario, and on random programs.  These
tests run each configuration twice, once per path, and compare raw
values with ``==`` (no tolerances: the contract is identical float
accumulation, not approximately-equal results).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import compile_source
from repro.apps.livermore import compile_kernel
from repro.apps.matmul import compile_matmul
from repro.apps.nbody import compile_nbody
from repro.apps.simple_app import compile_simple
from repro.apps.stencil import compile_stencil
from repro.common.config import MachineConfig, ObsConfig, SimConfig
from repro.sim import chaos
from repro.sim.machine import Machine

from tests.properties.test_semantics_properties import exprs


def _config(pes: int, fast: bool, **over) -> SimConfig:
    return SimConfig(machine=MachineConfig(num_pes=pes),
                     obs=ObsConfig(metrics=True),
                     fast_path=fast, **over)


def _run_both(program, args: tuple, pes: int, **over):
    """One (program, args, pes) configuration on both interpreter paths."""
    fast = program.run_pods(args, config=_config(pes, True, **over))
    ref = program.run_pods(args, config=_config(pes, False, **over))
    return fast, ref


def _assert_identical(fast, ref) -> None:
    assert fast.value == ref.value
    assert fast.stats.finish_time_us == ref.stats.finish_time_us
    assert fast.stats.events_processed == ref.stats.events_processed
    assert fast.stats.instructions == ref.stats.instructions
    assert fast.stats.context_switches == ref.stats.context_switches
    assert fast.stats.registry.to_jsonl() == ref.stats.registry.to_jsonl()


APPS = [
    ("simple", lambda: compile_simple(), (8, 1)),
    ("matmul", lambda: compile_matmul(checksum=True), (6,)),
    ("nbody", lambda: compile_nbody(), (8, 1)),
    ("stencil", lambda: compile_stencil(), (10, 2)),
    ("livermore-hydro", lambda: compile_kernel("hydro"), (24,)),
    ("livermore-inner", lambda: compile_kernel("inner"), (24,)),
]


class TestApps:
    @pytest.mark.parametrize("name, build, args",
                             APPS, ids=[a[0] for a in APPS])
    @pytest.mark.parametrize("pes", [1, 4])
    def test_app_bit_identical(self, name, build, args, pes):
        _assert_identical(*_run_both(build(), args, pes))


class TestChaosScenarios:
    """Every simulated-network chaos scenario behaves identically on the
    fast path: healed runs finish at the same modeled time with the same
    metrics; diagnosed runs raise the same error with the same text."""

    @pytest.fixture(scope="class")
    def program(self):
        return compile_source(chaos.ROW_SWEEP)

    @pytest.mark.parametrize(
        "scenario", chaos.scenarios(4), ids=lambda s: s.name)
    def test_scenario_bit_identical(self, program, scenario):
        def run(fast: bool):
            cfg = _config(4, fast, faults=scenario.faults, **scenario.cfg)
            return program.run_pods((chaos.N,), config=cfg)

        if scenario.heals:
            _assert_identical(run(True), run(False))
            return
        with pytest.raises(scenario.error) as fast_exc:
            run(True)
        with pytest.raises(scenario.error) as ref_exc:
            run(False)
        assert str(fast_exc.value) == str(ref_exc.value)


class TestTrace:
    def test_golden_trace_identical(self):
        """The structured event trace — order and content — matches."""
        program = compile_source(chaos.ROW_SWEEP)

        def traced(fast: bool):
            cfg = SimConfig(machine=MachineConfig(num_pes=2),
                            obs=ObsConfig(trace=True), fast_path=fast)
            machine = Machine(program.pods, cfg)
            machine.run((6,))
            return [e.golden_line() for e in machine.tracer.events]

        lines_fast, lines_ref = traced(True), traced(False)
        assert lines_fast == lines_ref
        assert lines_fast  # non-empty: the tracer actually recorded


class TestErrorText:
    @pytest.mark.parametrize("source, args", [
        # Type error inside a binop (decode.py re-creates the reference
        # diagnostic, template name and pc included).
        ("function main(n) { A = matrix(n, n); return A + 1; }", (3,)),
        # Out-of-bounds array write caught by the Array Manager.
        ("function main(n) { A = matrix(n, n); A[n + 1, 1] = 0;"
         " return A[1, 1]; }", (3,)),
    ])
    def test_error_text_identical(self, source, args):
        program = compile_source(source)
        errors = []
        for fast in (True, False):
            with pytest.raises(Exception) as exc:
                program.run_pods(args, config=_config(2, fast))
            errors.append((type(exc.value), str(exc.value)))
        assert errors[0] == errors[1]


class TestTilingInvariant:
    """Satellite of the batched event loop: per-PE busy + attributed wait
    intervals still tile ``[0, makespan]`` exactly with the fast path on
    (the float-drift audit for ``_serve``/``schedule`` under batching)."""

    @pytest.mark.parametrize("pes", [1, 3, 4])
    def test_busy_plus_waits_tile_makespan(self, pes):
        from repro.obs.critpath import pe_wait_intervals

        program = compile_simple()
        cfg = SimConfig(machine=MachineConfig(num_pes=pes),
                        obs=ObsConfig(timelines=True, waits=True))
        assert cfg.fast_path
        result = program.run_pods((8, 1), config=cfg)
        stats = result.stats
        finish = stats.finish_time_us
        for pe in range(pes):
            intervals = pe_wait_intervals(stats.waits, stats.timelines,
                                          pe, finish)
            line = stats.timelines.line(pe, "EU")
            # Structural exactness: the attributed idle intervals are the
            # complement of the busy spans — shared boundaries are equal
            # floats, not merely close ones.
            busy_edges = [(s.start, s.end) for s in line.spans()]
            pieces = sorted(busy_edges
                            + [(s, e) for s, e, _ in intervals])
            cursor = 0.0
            for s, e in pieces:
                assert s == cursor
                assert e >= s
                cursor = e
            assert cursor == finish
            covered = sum(e - s for s, e, _ in intervals)
            busy = line.busy_between(0.0, finish)
            assert covered + busy == pytest.approx(finish, rel=1e-12)


class TestRandomPrograms:
    @given(expr=exprs(), pes=st.sampled_from([1, 3]))
    @settings(max_examples=40, deadline=None)
    def test_random_expression_programs_bit_identical(self, expr, pes):
        src, _ = expr
        program = compile_source(
            f"function main(a, b) {{ return {src}; }}")
        fast, ref = _run_both(program, (3, 1.5), pes)
        _assert_identical(fast, ref)


class TestOverrides:
    def test_env_var_forces_reference(self, monkeypatch):
        program = compile_simple()
        monkeypatch.setenv("PODS_SIM_REFERENCE", "1")
        machine = Machine(program.pods, SimConfig())
        assert machine._dcode is None
        monkeypatch.delenv("PODS_SIM_REFERENCE")
        machine = Machine(program.pods, SimConfig())
        assert machine._dcode is not None
        assert machine._eu_step.__func__ is Machine._eu_step_fast

    def test_config_flag_selects_reference(self):
        program = compile_simple()
        machine = Machine(program.pods, SimConfig(fast_path=False))
        assert machine._dcode is None
        assert machine._eu_step.__func__ is Machine._eu_step
