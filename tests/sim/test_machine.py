"""End-to-end tests of the PODS simulator: semantics on 1..N PEs."""

import pytest

from repro.api import compile_source
from repro.common.config import MachineConfig, SimConfig
from repro.common.errors import (
    BoundsViolation,
    DeadlockError,
    ExecutionError,
    SingleAssignmentViolation,
)

PES = [1, 2, 4, 7]


def run(src, args=(), num_pes=1, **cfg):
    p = compile_source(src)
    if cfg:
        config = SimConfig(machine=MachineConfig(num_pes=num_pes, **cfg))
        return p.run_pods(args, num_pes=num_pes, config=config)
    return p.run_pods(args, num_pes=num_pes)


class TestScalars:
    def test_constant_return(self):
        assert run("function main() { return 42; }").value == 42

    def test_arithmetic(self):
        src = "function main(a, b) { return (a + b) * (a - b) / 2; }"
        assert run(src, (7, 3)).value == pytest.approx(20.0)

    def test_float_int_mix(self):
        src = "function main() { return 3 * 0.5 + 1; }"
        assert run(src).value == pytest.approx(2.5)

    def test_builtins(self):
        src = ("function main(x) { return sqrt(x) + abs(-2) + min(4, 9)"
               " + max(4, 9); }")
        assert run(src, (16.0,)).value == pytest.approx(4.0 + 2 + 4 + 9)

    def test_power(self):
        assert run("function main() { return 2 ^ 10; }").value == 1024

    def test_mod(self):
        assert run("function main() { return 17 % 5; }").value == 2

    def test_comparison_chain(self):
        src = "function main(a) { return if a >= 10 and a < 20 then 1 else 0; }"
        assert run(src, (15,)).value == 1
        assert run(src, (25,)).value == 0

    def test_division_by_zero_faults(self):
        with pytest.raises(ExecutionError):
            run("function main(a) { return 1 / a; }", (0,))


class TestConditionals:
    def test_if_expression(self):
        src = "function main(a, b) { return if a < b then a else b; }"
        assert run(src, (3, 9)).value == 3
        assert run(src, (9, 3)).value == 3

    def test_if_statement_with_returns(self):
        src = """
        function main(a) {
            if a > 0 { return 1; } else if a < 0 { return -1; } else { return 0; }
        }
        """
        assert run(src, (5,)).value == 1
        assert run(src, (-5,)).value == -1
        assert run(src, (0,)).value == 0

    def test_untaken_branch_read_does_not_deadlock(self):
        # The else branch reads A[n] which is never written; the then
        # branch must protect it (dataflow switch semantics).
        src = """
        function main(n) {
            A = array(n);
            A[1] = 7;
            return if n > 0 then A[1] else A[n];
        }
        """
        assert run(src, (5,)).value == 7


class TestLoops:
    @pytest.mark.parametrize("pes", PES)
    def test_fill_matrix(self, pes):
        src = """
        function main(n) {
            A = matrix(n, n);
            for i = 1 to n {
                for j = 1 to n { A[i, j] = i * 100 + j; }
            }
            return A;
        }
        """
        v = run(src, (6,), num_pes=pes).value
        assert v.dims == (6, 6)
        for i in range(1, 7):
            for j in range(1, 7):
                assert v[i, j] == i * 100 + j

    @pytest.mark.parametrize("pes", PES)
    def test_descending_loop(self, pes):
        src = """
        function main(n) {
            A = array(n);
            for i = n downto 1 { A[i] = n - i; }
            return A;
        }
        """
        v = run(src, (9,), num_pes=pes).value
        assert v.flat == [8, 7, 6, 5, 4, 3, 2, 1, 0]

    def test_empty_loop(self):
        src = """
        function main() {
            s = 5;
            for i = 1 to 0 { next s = s + 100; }
            return s;
        }
        """
        assert run(src).value == 5

    def test_reduction(self):
        src = """
        function main(n) {
            s = 0;
            for i = 1 to n { next s = s + i; }
            return s;
        }
        """
        assert run(src, (100,)).value == 5050

    def test_next_values_see_old_values(self):
        # Both 'next' right-hand sides read the previous iteration's
        # values (Id semantics): a Fibonacci pair swap.
        src = """
        function main(n) {
            a = 0;
            b = 1;
            for i = 1 to n { next a = b; next b = a + b; }
            return a;
        }
        """
        assert run(src, (10,)).value == 55

    def test_conditional_next(self):
        src = """
        function main(n) {
            evens = 0;
            for i = 1 to n {
                if i % 2 == 0 { next evens = evens + 1; }
            }
            return evens;
        }
        """
        assert run(src, (9,)).value == 4

    @pytest.mark.parametrize("pes", [1, 3])
    def test_nested_reduction_with_loop_results(self, pes):
        src = """
        function main(n) {
            A = matrix(n, n);
            for i = 1 to n { for j = 1 to n { A[i, j] = i * j; } }
            total = 0;
            for i = 1 to n {
                row = 0;
                for j = 1 to n { next row = row + A[i, j]; }
                next total = total + row;
            }
            return total;
        }
        """
        n = 5
        expect = sum(i * j for i in range(1, n + 1) for j in range(1, n + 1))
        assert run(src, (n,), num_pes=pes).value == expect

    def test_while_loop(self):
        src = """
        function main(n) {
            s = 1;
            k = 0;
            while s < n { next s = s * 2; next k = k + 1; }
            return k;
        }
        """
        assert run(src, (1000,)).value == 10

    def test_while_false_initially(self):
        src = """
        function main() {
            s = 5;
            while s < 0 { next s = s - 1; }
            return s;
        }
        """
        assert run(src).value == 5


class TestSweeps:
    """LCD loops: I-structure synchronization serializes correctly."""

    @pytest.mark.parametrize("pes", PES)
    def test_row_sweep(self, pes):
        src = """
        function main(n) {
            B = matrix(n, n);
            for j = 1 to n { B[1, j] = 1.0 * j; }
            for i = 2 to n {
                for j = 1 to n { B[i, j] = B[i - 1, j] + 1.0; }
            }
            return B;
        }
        """
        v = run(src, (8,), num_pes=pes).value
        for i in range(1, 9):
            for j in range(1, 9):
                assert v[i, j] == pytest.approx(j + i - 1.0)

    @pytest.mark.parametrize("pes", [1, 4])
    def test_ascending_then_descending_sweep(self, pes):
        # The conduction pattern: a forward then a backward pass.
        src = """
        function main(n) {
            F = array(n);
            G = array(n);
            F[1] = 1.0;
            for i = 2 to n { F[i] = F[i - 1] * 0.5 + 1.0; }
            G[n] = F[n];
            for i = n - 1 downto 1 { G[i] = G[i + 1] * 0.5 + F[i]; }
            return G;
        }
        """
        v = run(src, (6,), num_pes=pes).value
        f = [None, 1.0]
        for i in range(2, 7):
            f.append(f[i - 1] * 0.5 + 1.0)
        g = [None] * 7
        g[6] = f[6]
        for i in range(5, 0, -1):
            g[i] = g[i + 1] * 0.5 + f[i]
        for i in range(1, 7):
            assert v[i] == pytest.approx(g[i])

    def test_wavefront_2d(self):
        src = """
        function main(n) {
            A = matrix(n, n);
            A[1, 1] = 1;
            for j = 2 to n { A[1, j] = A[1, j - 1] + 1; }
            for i = 2 to n { A[i, 1] = A[i - 1, 1] + 1; }
            for i = 2 to n {
                for j = 2 to n { A[i, j] = A[i - 1, j] + A[i, j - 1]; }
            }
            return A;
        }
        """
        v = run(src, (5,), num_pes=3).value
        # Pascal-like recurrence; check a couple of known values.
        assert v[1, 5] == 5
        assert v[2, 2] == 2 + 2
        assert v[5, 5] == v[4, 5] + v[5, 4]


class TestFunctions:
    def test_simple_call(self):
        src = """
        function square(x) { return x * x; }
        function main(n) { return square(n) + square(n + 1); }
        """
        assert run(src, (3,)).value == 9 + 16

    def test_recursion(self):
        src = """
        function fact(n) { return if n <= 1 then 1 else n * fact(n - 1); }
        function main() { return fact(10); }
        """
        assert run(src).value == 3628800

    def test_double_recursion(self):
        src = """
        function fib(n) { return if n < 2 then n else fib(n - 1) + fib(n - 2); }
        function main() { return fib(15); }
        """
        assert run(src).value == 610

    @pytest.mark.parametrize("pes", [1, 4])
    def test_array_passed_to_function(self, pes):
        src = """
        function fill(B, n) {
            for i = 1 to n { B[i] = i * i; }
            return 0;
        }
        function total(B, n) {
            s = 0;
            for i = 1 to n { next s = s + B[i]; }
            return s;
        }
        function main(n) {
            A = array(n);
            dummy = fill(A, n);
            return total(A, n);
        }
        """
        assert run(src, (6,), num_pes=pes).value == sum(i * i for i in range(1, 7))

    def test_function_called_inside_loop(self):
        src = """
        function f(i, j) { return i * 10 + j; }
        function main(n) {
            A = matrix(n, n);
            for i = 1 to n {
                for j = 1 to n { A[i, j] = f(i, j); }
            }
            return A;
        }
        """
        v = run(src, (4,), num_pes=2).value
        assert v[3, 2] == 32


class TestFaults:
    def test_single_assignment_violation(self):
        src = """
        function main() {
            A = array(4);
            A[1] = 1;
            A[1] = 2;
            return A;
        }
        """
        with pytest.raises(SingleAssignmentViolation):
            run(src)

    def test_bounds_violation(self):
        src = """
        function main(n) {
            A = array(n);
            A[n + 1] = 1;
            return A;
        }
        """
        with pytest.raises(BoundsViolation):
            run(src, (4,))

    def test_read_of_never_written_deadlocks_with_diagnostics(self):
        src = """
        function main(n) {
            A = array(n);
            A[1] = 1;
            return A[2];
        }
        """
        with pytest.raises(DeadlockError) as exc:
            run(src, (4,))
        assert "deferred reads" in str(exc.value)

    def test_arithmetic_on_array_id_faults(self):
        src = """
        function main(n) {
            A = array(n);
            return A + 1;
        }
        """
        with pytest.raises(ExecutionError):
            run(src, (4,))


class TestDeterminism:
    SWEEP = """
    function main(n) {
        B = matrix(n, n);
        for j = 1 to n { B[1, j] = 1.0 * j; }
        for i = 2 to n {
            for j = 1 to n { B[i, j] = B[i - 1, j] * 0.9 + 0.1; }
        }
        return B;
    }
    """

    def test_identical_runs_identical_times(self):
        p = compile_source(self.SWEEP)
        r1 = p.run_pods((6,), num_pes=3)
        r2 = p.run_pods((6,), num_pes=3)
        assert r1.finish_time_us == r2.finish_time_us
        assert r1.value == r2.value
        assert r1.stats.events_processed == r2.stats.events_processed

    def test_results_invariant_under_jitter(self):
        # The Church-Rosser property (paper Section 2): scheduling
        # nondeterminism must never change the answer.
        p = compile_source(self.SWEEP)
        base = p.run_pods((6,), num_pes=4)
        for seed in range(5):
            cfg = SimConfig(machine=MachineConfig(num_pes=4),
                            jitter_seed=seed, jitter_max_us=200.0)
            jr = p.run_pods((6,), num_pes=4, config=cfg)
            assert jr.value == base.value

    def test_same_result_across_pe_counts(self):
        p = compile_source(self.SWEEP)
        base = p.run_pods((7,), num_pes=1).value
        for pes in (2, 3, 5, 8):
            assert p.run_pods((7,), num_pes=pes).value == base


class TestStatsAndUnits:
    def test_eu_is_busiest_unit(self):
        # Figure 8's headline: the EU dominates utilization.
        src = """
        function main(n) {
            A = matrix(n, n);
            for i = 1 to n {
                for j = 1 to n { A[i, j] = 1.0 * i * j + 0.5; }
            }
            return A;
        }
        """
        r = run(src, (10,), num_pes=2)
        util = r.stats.utilizations()
        assert util["EU"] == max(util.values())

    def test_remote_traffic_only_with_multiple_pes(self):
        src = """
        function main(n) {
            A = array(n);
            for i = 1 to n { A[i] = i; }
            return A;
        }
        """
        r1 = run(src, (64,), num_pes=1)
        assert r1.stats.total("tokens_sent_remote") == 0
        assert r1.stats.remote_reads == 0
        r4 = run(src, (64,), num_pes=4)
        assert r4.stats.total("tokens_sent_remote") > 0

    def test_page_cache_reduces_remote_traffic(self):
        # Gather loop executed on PE0 reads everything; with caching the
        # pages amortize, without it every remote read is a round trip.
        src = """
        function main(n) {
            A = array(n);
            for i = 1 to n { A[i] = i; }
            s = 0;
            for i = 1 to n { next s = s + A[i]; }
            return s;
        }
        """
        with_cache = run(src, (128,), num_pes=4, cache_enabled=True)
        without = run(src, (128,), num_pes=4, cache_enabled=False)
        assert with_cache.value == without.value == 128 * 129 // 2
        assert (with_cache.stats.total("pages_sent")
                < without.stats.total("pages_sent"))
        assert with_cache.stats.total("cache_hits") > 0

    def test_frames_all_released(self):
        src = """
        function main(n) {
            A = matrix(n, n);
            for i = 1 to n { for j = 1 to n { A[i, j] = i + j; } }
            return A;
        }
        """
        p = compile_source(src)
        m_cfg = SimConfig(machine=MachineConfig(num_pes=3))
        from repro.sim.machine import Machine

        m = Machine(p.pods, m_cfg)
        m.run((6,))
        assert m.frames == {}
        created = sum(pe.stats.frames_created for pe in m.pes)
        destroyed = sum(pe.stats.frames_destroyed for pe in m.pes)
        assert created == destroyed > 0

    def test_speedup_on_compute_heavy_loop(self):
        src = """
        function main(n) {
            A = matrix(n, n);
            for i = 1 to n {
                for j = 1 to n {
                    A[i, j] = sqrt(1.0 * i * j) + sqrt(2.0 * i) + sqrt(3.0 * j);
                }
            }
            return A;
        }
        """
        t1 = run(src, (16,), num_pes=1).finish_time_us
        t4 = run(src, (16,), num_pes=4).finish_time_us
        assert t1 / t4 > 2.0, f"speedup only {t1 / t4:.2f}"


class TestBlockingReadAblation:
    def test_split_phase_beats_blocking_reads(self):
        # Two independent reductions run concurrently on the spawning PE.
        # With split-phase reads their remote misses overlap; with
        # blocking reads (the P&R-style ablation) the EU stalls on each
        # round trip.  Results must be identical either way.
        src = """
        function total(B, n) {
            s = 0;
            for i = 1 to n { next s = s + B[i]; }
            return s;
        }
        function main(n) {
            A = array(n);
            B = array(n);
            for i = 1 to n { A[i] = i; }
            for i = 1 to n { B[i] = i * 2; }
            return total(A, n) + total(B, n);
        }
        """
        split = run(src, (128,), num_pes=4, split_phase_reads=True)
        blocking = run(src, (128,), num_pes=4, split_phase_reads=False)
        expect = 128 * 129 // 2 * 3
        assert split.value == blocking.value == expect
        assert blocking.finish_time_us > split.finish_time_us
