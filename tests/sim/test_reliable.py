"""The reliable-delivery protocol and the progress guardrails.

Unit tests for the channel bookkeeping (:mod:`repro.sim.reliable`) plus
machine-level integration: chaos plans heal to bit-identical results,
unrecoverable plans raise the structured errors — never a hang — and the
layer is invisible when off.
"""

import pytest

from repro.api import compile_source
from repro.common.config import MachineConfig, ObsConfig, SimConfig
from repro.common.errors import DeadlockError, LivelockError, PEHaltError
from repro.sim.reliable import NetStats, ReliableNet

ROW_SWEEP = """
function main(n) {
    B = matrix(n, n);
    for j = 1 to n { B[1, j] = 1.0 * j; }
    for i = 2 to n {
        for j = 1 to n { B[i, j] = B[i - 1, j] * 0.5 + 1.0; }
    }
    s = 0.0;
    for j = 1 to n { next s = s + B[n, j]; }
    return s;
}
"""

N = 6


@pytest.fixture(scope="module")
def program():
    return compile_source(ROW_SWEEP)


@pytest.fixture(scope="module")
def clean(program):
    return program.run_pods((N,), config=_config(2))


def _config(pes, **kw):
    return SimConfig(machine=MachineConfig(num_pes=pes),
                     obs=ObsConfig(metrics=True), **kw)


class TestChannelBookkeeping:
    def test_sequence_numbers_per_channel(self):
        net = ReliableNet()
        assert net.assign(0, 1, "a", 0.0) == 0
        assert net.assign(0, 1, "b", 1.0) == 1
        assert net.assign(1, 0, "c", 2.0) == 0  # independent channel
        assert net.stats.sent == 3

    def test_ack_retires_exactly_once(self):
        net = ReliableNet()
        seq = net.assign(0, 1, "a", 0.0)
        assert net.on_ack(0, 1, seq)
        assert not net.on_ack(0, 1, seq)       # duplicate ack: no-op
        assert not net.on_ack(2, 3, 0)         # unknown channel: no-op
        assert not net.channel(0, 1).unacked

    def test_receiver_dedup(self):
        net = ReliableNet()
        assert net.on_deliver(0, 1, 0)
        assert not net.on_deliver(0, 1, 0)
        assert net.stats.dup_discarded == 1
        assert net.on_deliver(0, 1, 1)

    def test_pending_channels_deterministic_and_described(self):
        net = ReliableNet()
        net.assign(1, 0, "b", 0.0)
        net.assign(0, 1, "a", 0.0)
        pending = net.pending_channels()
        assert [(ch.src, ch.dst) for ch in pending] == [(0, 1), (1, 0)]
        assert "PE0->PE1: 1 unacked" in net.describe_pending()[0]

    def test_netstats_any_faults(self):
        stats = NetStats(sent=5, acks_sent=5)
        assert not stats.any_faults()      # clean reliable run
        stats.dropped = 1
        assert stats.any_faults()
        assert "dropped copies" in stats.table()


class TestHealing:
    """Chaos plans heal to the fault-free run's exact result."""

    def run_chaos(self, program, faults, **kw):
        kw.setdefault("retransmit_timeout_us", 1_000.0)
        return program.run_pods((N,), config=_config(2, faults=faults, **kw))

    def test_drop_heals_via_retransmit(self, program, clean):
        res = self.run_chaos(program, "drop:kind=page,count=1")
        assert res.value == clean.value
        ns = res.stats.netstats
        assert ns.dropped == 1
        assert ns.retransmits >= 1
        # Healing costs modeled time: the lost copy waited out the timer.
        assert res.stats.finish_time_us > clean.stats.finish_time_us

    def test_duplicates_are_discarded(self, program, clean):
        res = self.run_chaos(program, "dup:count=0")
        assert res.value == clean.value
        assert res.stats.netstats.dup_discarded > 0

    def test_ack_loss_heals_via_reack(self, program, clean):
        res = self.run_chaos(program, "drop:kind=ack,count=2")
        assert res.value == clean.value
        ns = res.stats.netstats
        # The data arrived; the lost ack forces a retransmission whose
        # duplicate the receiver discards and re-acks.
        assert ns.retransmits >= 1
        assert ns.dup_discarded >= 1

    def test_reorder_and_delay_are_latency_only(self, program, clean):
        # Default (5 ms) retransmit timer: the injected lags resolve well
        # inside it, so nothing needs healing — latency is the only cost.
        res = self.run_chaos(program, "reorder:kind=page,count=1;"
                                      "delay:kind=value,count=2",
                             retransmit_timeout_us=5_000.0)
        assert res.value == clean.value
        ns = res.stats.netstats
        assert ns.delayed >= 2
        assert ns.retransmits == 0 and ns.dropped == 0

    def test_net_metrics_published(self, program):
        res = self.run_chaos(program, "drop:kind=page,count=1")
        rows = res.stats.registry.to_jsonl()
        assert '"name":"net.sent"' in rows
        assert '"name":"net.dropped"' in rows
        assert '"name":"net.retransmits"' in rows

    def test_retransmit_spans_for_perfetto(self, program):
        res = self.run_chaos(program, "drop:kind=page,count=1")
        spans = res.stats.netstats.spans
        assert spans, "retransmissions must record NET-track spans"
        pe, start, end, label = spans[0]
        assert end > start and "retransmit" in label


class TestGuardrails:
    """Unrecoverable faults fail structurally within bounded sim time."""

    def test_pe_halt_raises_structured_error(self, program):
        wall = 100_000.0
        with pytest.raises(PEHaltError) as err:
            program.run_pods((N,), config=_config(
                2, faults="pe-halt:pe=1,at=300",
                max_sim_time_us=wall, retransmit_timeout_us=1_000.0))
        exc = err.value
        assert exc.pe == 1
        assert exc.sim_time_us is not None and exc.sim_time_us <= wall
        assert "PE 1 halted" in str(exc)
        # The diagnosis names the undelivered channels to the dead PE.
        assert any("->PE1" in ch for ch in exc.channels)

    def test_budget_exhaustion_raises_livelock(self, program):
        with pytest.raises(LivelockError, match="retransmit budget"):
            program.run_pods((N,), config=_config(
                2, faults="drop:kind=read,count=0",
                retransmit_timeout_us=500.0, retransmit_budget=3))

    def test_max_sim_time_wall_never_hangs(self, program):
        # A 100%-lossy read channel with a huge retransmit budget would
        # retry for ~budget x timeout; the wall cuts the run off first
        # with a structured error, not a hang.
        with pytest.raises(LivelockError, match="max_sim_time_us"):
            program.run_pods((N,), config=_config(
                2, faults="drop:kind=read,count=0",
                retransmit_timeout_us=5_000.0, retransmit_budget=1000,
                max_sim_time_us=20_000.0))

    def test_halted_pe_fault_must_target_real_pe(self, program):
        from repro.common.errors import ExecutionError

        with pytest.raises(ExecutionError, match="targets PE 7"):
            program.run_pods((N,), config=_config(
                2, faults="pe-halt:pe=7"))

    def test_deadlock_reports_last_progress_under_reliable(self):
        # A genuine dataflow deadlock (element never written) with the
        # reliable layer armed reports the last-progress time, so it
        # reads differently from a lost-message livelock.
        program = compile_source("""
function main(n) {
    A = matrix(n, n);
    A[1, 1] = 1.0;
    return A[2, 2];
}
""")
        with pytest.raises(DeadlockError, match="last progress at"):
            program.run_pods((2,), config=_config(2, reliable=True))


class TestZeroCost:
    """Layer off => byte-identical; layer on clean => value-identical."""

    def test_faults_off_publishes_no_net_rows(self, clean):
        assert clean.stats.netstats is None
        assert '"name":"net.' not in clean.stats.registry.to_jsonl()

    def test_reliable_on_clean_network_same_result(self, program, clean):
        res = program.run_pods((N,), config=_config(2, reliable=True))
        assert res.value == clean.value
        ns = res.stats.netstats
        assert ns.sent > 0 and ns.acks_sent > 0
        assert not ns.any_faults()
        # Ack traffic costs modeled time; honesty over invisibility.
        assert res.stats.finish_time_us >= clean.stats.finish_time_us
