"""White-box tests of the Array Manager: caching, deferral, forwarded
writes, allocate-broadcast races."""

import pytest

from repro.api import compile_source
from repro.common.config import MachineConfig, SimConfig
from repro.runtime.tokens import ReadRequestMsg, RemoteWriteMsg, ReturnAddress
from repro.sim.machine import Machine


def build(src, pes=2, **mc):
    program = compile_source(src)
    return Machine(program.pods, SimConfig(machine=MachineConfig(
        num_pes=pes, **mc)))


GATHER = """
function main(n) {
    A = array(n);
    for i = 1 to n { A[i] = i * 2; }
    s = 0;
    for i = 1 to n { next s = s + A[i]; }
    return s;
}
"""


class TestCaching:
    def test_page_hits_after_first_miss(self):
        m = build(GATHER, pes=2)
        r = m.run((64,))
        assert r.value == 64 * 65
        # The gather loop reads PE1's 32 elements remotely; after the
        # first page fetch most reads hit the cache.
        assert r.stats.total("cache_hits") > 20
        assert r.stats.total("pages_sent") < 10

    def test_cache_disabled_ships_more_pages(self):
        with_cache = build(GATHER, pes=2).run((64,))
        without = build(GATHER, pes=2, cache_enabled=False).run((64,))
        assert without.value == with_cache.value
        assert (without.stats.total("pages_sent")
                > with_cache.stats.total("pages_sent"))

    def test_incomplete_page_refetched(self):
        # The consumer races ahead of the producer: early page snapshots
        # have holes, forcing refetches (the paper's "the same page may
        # be copied multiple times").
        src = """
        function main(n) {
            A = array(n);
            B = array(n);
            for i = 1 to n { A[i] = i; }
            for i = 1 to n { B[i] = A[i] + A[min(i + 7, n)]; }
            s = 0;
            for i = 1 to n { next s = s + B[i]; }
            return s;
        }
        """
        m = build(src, pes=2)
        r = m.run((64,))
        expect = sum(i + min(i + 7, 64) for i in range(1, 65))
        assert r.value == expect


class TestDeferredRemote:
    def test_remote_reader_ahead_of_writer(self):
        # The reduction starts immediately; remote elements it needs are
        # deferred at their owner and answered on write.
        m = build(GATHER, pes=4)
        r = m.run((64,))
        assert r.value == 64 * 65
        assert r.stats.total("deferred_remote") >= 0  # races are timing
        # Every deferred read was eventually serviced.
        for pe in m.pes:
            for seg in pe.segments.values():
                assert seg.pending_offsets() == []


class TestForwardedWrites:
    def test_responsibility_vs_ownership(self):
        # 4x6 over 2 PEs with page 5: the segment boundary (offset 15)
        # falls inside row 3, whose first element PE0 owns -> PE0 is
        # responsible for the whole row and forwards the tail writes to
        # PE1 (the Figure 6 situation).
        src = """
        function main(n) {
            A = matrix(4, 6);
            for i = 1 to 4 {
                for j = 1 to 6 { A[i, j] = i * 10 + j; }
            }
            return A;
        }
        """
        m = build(src, pes=2, page_size=5)
        r = m.run((0,))
        for i in range(1, 5):
            for j in range(1, 7):
                assert r.value[i, j] == i * 10 + j
        assert m.pes[0].stats.array_writes_remote + \
            m.pes[1].stats.array_writes_remote > 0


class TestBroadcastRaces:
    def test_read_request_before_header_installed(self):
        # Deliver a remote read request for an array whose allocate
        # broadcast has not reached this PE: the AM must requeue it and
        # answer once the header lands.
        m = build(GATHER, pes=2)
        # Prime: run normally first to create machinery, then check the
        # requeue path directly on a fresh machine.
        m2 = build(GATHER, pes=2)
        waiter = ReturnAddress(0, 0, 0)
        msg = ReadRequestMsg(0, 1, array_id=999, offset=0, waiter=waiter)
        m2.schedule(0.0, m2._am_remote_read_request, m2.pes[1], msg)
        # Run the program; the stray request keeps requeueing but the
        # program itself must finish correctly.
        with pytest.raises(Exception):
            # array 999 never exists: the machine eventually trips its
            # event limit rather than hanging silently.
            m2.config = m2.config.__class__(
                machine=m2.config.machine, max_events=5000)
            m2.run((8,))

    def test_remote_write_before_header(self):
        m = build(GATHER, pes=2)
        msg = RemoteWriteMsg(0, 1, array_id=7, offset=0, value=1.0)
        # Header for array 7 does not exist yet; the write requeues and
        # eventually lands once the real program's arrays appear...
        # (array ids are sequential, the program's array gets id 1, so
        # id 7 never appears: like above, bounded failure not a hang).
        from repro.common.errors import ExecutionError

        m.config = m.config.__class__(machine=m.config.machine,
                                      max_events=5000)
        m.schedule(0.0, m._am_write, m.pes[1], 7, 0, 1.0, True)
        with pytest.raises(ExecutionError):
            m.run((8,))


class TestArrayFaults:
    def test_write_to_wrong_rank(self):
        src = """
        function main(n) {
            A = matrix(n, n);
            A[1] = 5;
            return A;
        }
        """
        from repro.common.errors import BoundsViolation

        with pytest.raises(BoundsViolation):
            build(src, pes=1).run((4,))

    def test_fractional_index(self):
        src = """
        function main(n) {
            A = array(n);
            A[n / 2] = 1;
            return A;
        }
        """
        from repro.common.errors import BoundsViolation

        with pytest.raises(BoundsViolation):
            build(src, pes=1).run((4,))
