"""Unit tests for the timing model, statistics, and tracer."""

import pytest

from repro.sim import timing as T
from repro.sim.stats import PEStats, RunStats, UNITS
from repro.sim.trace import TraceEvent, Tracer


class TestTimingModel:
    def test_type_sensitive_costs(self):
        # Integer vs floating point, per the paper's table.
        assert T.binop_cost("add", 1, 2) == 0.300
        assert T.binop_cost("add", 1.0, 2) == 6.753
        assert T.binop_cost("add", 1, 2.0) == 6.753
        assert T.binop_cost("mul", 2, 3) == pytest.approx(1.2)
        assert T.binop_cost("mul", 2.0, 3.0) == 7.217

    def test_division_always_float_cost(self):
        # '/' produces a float even on int operands.
        assert T.binop_cost("div", 4, 2) == 10.707

    def test_comparison_costs(self):
        assert T.binop_cost("lt", 1, 2) == 0.300
        assert T.binop_cost("lt", 1.0, 2.0) == 5.803

    def test_unary_costs(self):
        assert T.unop_cost("sqrt", 2.0) == 18.929
        assert T.unop_cost("abs", -1) == 0.300
        assert T.unop_cost("abs", -1.0) == 12.626
        assert T.unop_cost("neg", 1.0) == 0.555

    def test_message_latency_regimes(self):
        # Dunigan: <=100 bytes flat, then linear.
        flat = T.message_latency(50)
        assert flat == T.message_latency(100)
        assert T.message_latency(101) > flat
        long = T.message_latency(1000)
        assert long == pytest.approx(697.0 + 400.0 + T.NET_PROPAGATION)

    def test_array_manager_formulas(self):
        assert T.am_free_array(100) == pytest.approx(30.0)
        assert T.am_array_write(0) == pytest.approx(0.4)
        assert T.am_array_write(3) == pytest.approx(0.4 + 3.0)
        assert T.am_send_page(32) == pytest.approx(32 * 0.3 + 1.0)
        assert T.am_receive_page(32) == pytest.approx(32 * 0.4)
        assert T.am_allocate() == pytest.approx(101.0)

    def test_local_read_identity(self):
        # 1 int mul + 1 int add + 3 int cmp + 1 read = 2.7 us.
        assert T.INT_MUL + T.INT_ADD + 3 * T.INT_CMP + T.MEM_READ == \
            pytest.approx(T.LOCAL_ARRAY_ACCESS)


class TestStats:
    def make_stats(self, busy_eu=50.0, finish=100.0, pes=2):
        pe_stats = []
        for _ in range(pes):
            s = PEStats()
            s.add_busy("EU", busy_eu)
            s.instructions = 10
            pe_stats.append(s)
        return RunStats(num_pes=pes, finish_time_us=finish,
                        pe_stats=pe_stats)

    def test_utilization_average_and_per_pe(self):
        stats = self.make_stats()
        assert stats.utilization("EU") == pytest.approx(0.5)
        assert stats.utilization("EU", pe=0) == pytest.approx(0.5)
        assert stats.utilization("MU") == 0.0

    def test_utilizations_cover_all_units(self):
        stats = self.make_stats()
        util = stats.utilizations()
        assert set(util) == set(UNITS)

    def test_zero_time_guard(self):
        stats = RunStats(num_pes=1, finish_time_us=0.0,
                         pe_stats=[PEStats()])
        assert stats.utilization("EU") == 0.0

    def test_totals(self):
        stats = self.make_stats()
        assert stats.instructions == 20

    def test_cache_hit_rate(self):
        s = PEStats()
        s.cache_hits = 3
        s.cache_misses = 1
        stats = RunStats(num_pes=1, finish_time_us=1.0, pe_stats=[s])
        assert stats.cache_hit_rate == pytest.approx(0.75)
        empty = RunStats(num_pes=1, finish_time_us=1.0,
                         pe_stats=[PEStats()])
        assert empty.cache_hit_rate == 0.0

    def test_report_is_readable(self):
        text = self.make_stats().report()
        assert "utilization" in text
        assert "EU=50.0%" in text


class TestTracer:
    def test_record_and_query(self):
        t = Tracer()
        t.record(1.0, 0, "frame-create", "a")
        t.record(2.0, 1, "block", "b")
        t.record(3.0, 0, "block", "c")
        assert len(t.of_kind("block")) == 2
        assert len(t.on_pe(0)) == 2
        assert t.counts() == {"frame-create": 1, "block": 2}

    def test_limit_drops_and_reports(self):
        t = Tracer(limit=2)
        for i in range(5):
            t.record(float(i), 0, "x", "d")
        assert len(t.events) == 2
        assert t.dropped == 3
        assert "3 events dropped" in t.format()

    def test_format_truncation(self):
        t = Tracer()
        for i in range(10):
            t.record(float(i), 0, "x", f"event {i}")
        text = t.format(limit=3)
        assert "7 more events" in text

    def test_event_format(self):
        e = TraceEvent(12.5, 3, "message", "hello")
        line = e.format()
        assert "12.5us" in line and "PE3" in line and "hello" in line

    def test_golden_line_stable_fields(self):
        e = TraceEvent(12.5, 3, "block", "main uid=7 slot=2",
                       unit="EU", sp=7, seq=41)
        assert e.golden_line() == "41 3 EU block 7"
        bare = TraceEvent(1.0, 0, "message", "x")
        assert bare.golden_line() == "0 0 - message -"


class TestTracerOverflow:
    def test_drop_mode_keeps_oldest(self):
        t = Tracer(limit=2, mode="drop")
        for i in range(5):
            t.record(float(i), 0, "x", f"e{i}")
        assert [e.detail for e in t.events] == ["e0", "e1"]
        assert t.dropped == 3
        assert t.truncated

    def test_ring_mode_keeps_newest(self):
        t = Tracer(limit=2, mode="ring")
        for i in range(5):
            t.record(float(i), 0, "x", f"e{i}")
        assert [e.detail for e in t.events] == ["e3", "e4"]
        assert t.dropped == 3
        # seq numbering is global, so the survivors still show where
        # they sat in the full stream
        assert [e.seq for e in t.events] == [4, 5]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            Tracer(mode="spill")

    def test_complete_trace_has_no_warning(self):
        t = Tracer(limit=10)
        t.record(1.0, 0, "x", "a")
        assert not t.truncated
        assert t.drop_warning() == ""
        assert "WARNING" not in t.summary()

    def test_drop_warning_prominent_in_summary(self):
        for mode in ("drop", "ring"):
            t = Tracer(limit=2, mode=mode)
            for i in range(5):
                t.record(float(i), 0, "x", "d")
            warning = t.drop_warning()
            assert "WARNING" in warning
            assert "3 of 5 events dropped" in warning
            # the summary must lead with it: a truncated trace should
            # never read as complete
            assert t.summary().startswith(warning)


class TestTimeline:
    def test_timeline_shape(self):
        from repro.sim.trace import timeline

        t = Tracer()
        for i in range(50):
            t.record(float(i), i % 2, "x", "d")
        text = timeline(t, num_pes=2, finish_us=50.0, buckets=10)
        lines = text.splitlines()
        assert lines[0].startswith("PE0")
        assert lines[1].startswith("PE1")
        assert len(lines) == 3

    def test_timeline_empty(self):
        from repro.sim.trace import timeline

        assert timeline(Tracer(), 2, 0.0) == "(no events)"

    def test_timeline_from_real_run(self):
        from repro.api import compile_source
        from repro.common.config import MachineConfig, SimConfig
        from repro.sim.machine import Machine
        from repro.sim.trace import timeline

        program = compile_source("""
        function main(n) {
            A = array(n);
            for i = 1 to n { A[i] = i; }
            return A[n];
        }
        """)
        m = Machine(program.pods,
                    SimConfig(machine=MachineConfig(num_pes=3), trace=True))
        r = m.run((48,))
        text = timeline(m.tracer, 3, r.finish_time_us, buckets=20)
        assert text.count("PE") == 3
