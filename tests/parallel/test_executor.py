"""Tests for the real-parallel multiprocessing backend."""

import pytest

from repro.api import compile_source
from repro.common.errors import ExecutionError


class TestShmArray:
    def test_write_read_roundtrip_types(self):
        from repro.parallel.shm_arrays import ShmArray

        arr = ShmArray("test_pods_rt1", (2, 3), create=True)
        try:
            arr.write((1, 1), 2.5)
            arr.write((1, 2), 42)
            arr.write((2, 3), True)
            assert arr.read((1, 1)) == 2.5
            assert arr.read((1, 2)) == 42
            assert isinstance(arr.read((1, 2)), int)
            assert arr.read((2, 3)) is True
        finally:
            arr.close()
            arr.unlink()

    def test_single_assignment_enforced(self):
        from repro.common.errors import SingleAssignmentViolation
        from repro.parallel.shm_arrays import ShmArray

        arr = ShmArray("test_pods_rt2", (4,), create=True)
        try:
            arr.write((1,), 1.0)
            with pytest.raises(SingleAssignmentViolation):
                arr.write((1,), 2.0)
        finally:
            arr.close()
            arr.unlink()

    def test_read_timeout_is_deadlock_diagnostic(self):
        from repro.parallel.shm_arrays import ShmArray

        arr = ShmArray("test_pods_rt3", (4,), create=True)
        try:
            with pytest.raises(ExecutionError) as exc:
                arr.read((2,), timeout_s=0.05)
            assert "deadlock" in str(exc.value)
        finally:
            arr.close()
            arr.unlink()

    def test_snapshot_with_absent(self):
        from repro.parallel.shm_arrays import ShmArray

        arr = ShmArray("test_pods_rt4", (3,), create=True)
        try:
            arr.write((2,), 7)
            assert arr.snapshot() == [None, 7, None]
        finally:
            arr.close()
            arr.unlink()


class TestExecutor:
    FILL = """
    function main(n) {
        A = matrix(n, n);
        for i = 1 to n {
            for j = 1 to n { A[i, j] = 1.0 * i * j + 0.25; }
        }
        return A;
    }
    """

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_fill_matches_sequential(self, workers):
        p = compile_source(self.FILL)
        seq = p.run_sequential((10,))
        par = p.run_parallel((10,), workers=workers)
        assert par.value.flat == seq.value.flat
        assert par.workers == workers

    def test_sweep_with_cross_worker_dependence(self):
        # Rows live on different workers; presence-bit spinning must
        # serialize the sweep correctly (real I-structure behaviour).
        p = compile_source("""
        function main(n) {
            B = matrix(n, n);
            for j = 1 to n { B[1, j] = 1.0 * j; }
            for i = 2 to n {
                for j = 1 to n { B[i, j] = B[i - 1, j] + 1.0; }
            }
            return B;
        }
        """)
        par = p.run_parallel((16,), workers=4)
        for j in range(1, 17):
            assert par.value[16, j] == pytest.approx(j + 15.0)

    def test_scalar_result(self):
        p = compile_source("""
        function main(n) {
            A = array(n);
            for i = 1 to n { A[i] = i * i; }
            s = 0;
            for i = 1 to n { next s = s + A[i]; }
            return s;
        }
        """)
        par = p.run_parallel((20,), workers=2)
        assert par.value == sum(i * i for i in range(1, 21))

    def test_local_temporary_arrays_are_private(self):
        # An array allocated inside a distributed iteration must not
        # collide across workers.
        p = compile_source("""
        function rowsum(T, n) {
            s = 0.0;
            for k = 1 to n { next s = s + T[k]; }
            return s;
        }
        function main(n) {
            A = matrix(n, n);
            for i = 1 to n {
                T = array(n);
                for j = 1 to n { T[j] = 1.0 * i * j; }
                for j = 1 to n { A[i, j] = T[j] + 0.5; }
            }
            return A;
        }
        """)
        par = p.run_parallel((8,), workers=4)
        assert par.value[5, 4] == pytest.approx(20.5)

    def test_worker_error_propagates(self):
        p = compile_source("""
        function main(n) {
            A = array(n);
            A[1] = 1;
            A[1] = 2;
            return A;
        }
        """)
        with pytest.raises(ExecutionError):
            p.run_parallel((4,), workers=2)

    def test_no_leaked_segments(self):
        import glob

        p = compile_source(self.FILL)
        p.run_parallel((6,), workers=2)
        assert not glob.glob("/dev/shm/pods*"), "leaked shared memory"
