"""Fault-injection tests for the supervised real-parallel backend.

Every failure mode the supervisor distinguishes — crash, hang, lost,
worker-reported error — is provoked deterministically and must surface
as a structured :class:`ParallelExecutionError` quickly (never the full
``timeout_s`` except for a genuine hang) and leave zero shared-memory
segments behind.
"""

import glob
import time

import pytest

from repro.api import compile_source
from repro.common.config import ParallelConfig
from repro.common.errors import ExecutionError, ParallelExecutionError

FILL = """
function main(n) {
    A = matrix(n, n);
    for i = 1 to n {
        for j = 1 to n { A[i, j] = 1.0 * i * j + 0.25; }
    }
    return A;
}
"""

MISSING_WRITE = """
function main(n) {
    A = array(n);
    for i = 1 to n { if i != 3 { A[i] = i; } }
    s = 0;
    for i = 1 to n { next s = s + A[i]; }
    return s;
}
"""


def assert_no_leaked_segments():
    assert not glob.glob("/dev/shm/pods*"), "leaked shared memory"


# These tests exercise the *fail-fast* layer underneath recovery: with
# recovery on (the default) an injected kill/drop would simply be healed
# (see tests/parallel/test_recovery.py for that behaviour).
NO_RECOVERY = ParallelConfig(workers=2, timeout_s=60.0, recovery=False)


class TestFaultPlanParsing:
    def test_parse_round_trip(self):
        from repro.parallel.faults import FaultPlan

        plan = FaultPlan.parse(
            "kill:worker=1,on=iter,after=3;drop:worker=2")
        assert len(plan.faults) == 2
        kill, drop = plan.faults
        assert (kill.action, kill.worker, kill.on, kill.after) == \
            ("kill", 1, "iter", 3)
        assert (drop.action, drop.worker, drop.on) == ("drop", 2, "result")

    def test_empty_spec_is_no_plan(self):
        from repro.parallel.faults import FaultPlan

        assert not FaultPlan.parse(None)
        assert not FaultPlan.parse("  ")

    @pytest.mark.parametrize("spec", [
        "explode:worker=1",         # unknown action
        "kill:after=3",             # missing worker
        "kill:worker=1,on=tick",    # unknown trigger
        "kill:worker=1,frobnicate=2",
    ])
    def test_malformed_specs_rejected(self, spec):
        from repro.parallel.faults import FaultPlan

        with pytest.raises(ValueError):
            FaultPlan.parse(spec)


class TestSupervisor:
    def test_killed_worker_is_structured_crash(self):
        p = compile_source(FILL)
        start = time.monotonic()
        with pytest.raises(ParallelExecutionError) as exc:
            p.run_parallel((10,), workers=2, config=NO_RECOVERY,
                           faults="kill:worker=1,on=iter,after=2")
        elapsed = time.monotonic() - start
        (failure,) = exc.value.failures
        assert failure.worker == 1
        assert failure.kind == "crash"
        assert failure.exitcode == 113
        # Fail-fast: detection is supervisor-poll bounded, nowhere near
        # the 60 s run deadline.
        assert elapsed < 15.0
        assert_no_leaked_segments()

    def test_crash_before_worker0_result_fails_fast(self):
        # The old backend blocked the full timeout on out_queue.get when
        # a non-0 worker died before worker 0 finished; the supervisor
        # must notice the child's exit instead.
        p = compile_source(FILL)
        start = time.monotonic()
        with pytest.raises(ParallelExecutionError) as exc:
            p.run_parallel((24,), workers=2, config=NO_RECOVERY,
                           faults="kill:worker=1,on=iter,after=0")
        elapsed = time.monotonic() - start
        assert [f.worker for f in exc.value.failures] == [1]
        assert elapsed < 15.0
        assert_no_leaked_segments()

    def test_hung_worker_raises_instead_of_truncating(self):
        # The old backend terminated the hung worker in ``finally`` and
        # still snapshotted the half-written array; now the deadline
        # produces a structured hang failure, never a result.
        p = compile_source(FILL)
        with pytest.raises(ParallelExecutionError) as exc:
            p.run_parallel((10,), workers=2, timeout_s=1.0,
                           faults="hang:worker=0,on=iter,after=2,seconds=60")
        assert "unjoined workers" in str(exc.value)
        hangs = [f for f in exc.value.failures if f.kind == "hang"]
        assert [f.worker for f in hangs] == [0]
        assert_no_leaked_segments()

    def test_dropped_worker_reported_lost(self):
        p = compile_source(FILL)
        with pytest.raises(ParallelExecutionError) as exc:
            p.run_parallel((10,), workers=2, config=NO_RECOVERY,
                           faults="drop:worker=1")
        (failure,) = exc.value.failures
        assert failure.kind == "lost"
        assert failure.exitcode == 0
        assert_no_leaked_segments()

    def test_missing_write_deadlock_is_bounded_and_diagnosed(self):
        # A read of a never-written element must hit the deferred-read
        # bound (shrunk from its 30 s default via config) and surface
        # the worker's deadlock diagnostic.
        p = compile_source(MISSING_WRITE)
        cfg = ParallelConfig(workers=2, read_timeout_s=0.3)
        start = time.monotonic()
        with pytest.raises(ParallelExecutionError) as exc:
            p.run_parallel((8,), workers=2, config=cfg)
        assert time.monotonic() - start < 15.0
        assert "deadlock" in str(exc.value)
        assert all(f.kind == "error" for f in exc.value.failures)
        assert_no_leaked_segments()

    def test_failures_are_execution_errors(self):
        # Callers that predate the supervisor catch ExecutionError.
        p = compile_source(FILL)
        with pytest.raises(ExecutionError):
            p.run_parallel((10,), workers=2, config=NO_RECOVERY,
                           faults="kill:worker=0,on=iter,after=1")
        assert_no_leaked_segments()

    def test_env_var_drives_fault_injection(self, monkeypatch):
        p = compile_source(FILL)
        monkeypatch.setenv("PODS_FAULTS", "kill:worker=1,on=iter,after=1")
        with pytest.raises(ParallelExecutionError):
            p.run_parallel((10,), workers=2, config=NO_RECOVERY)
        monkeypatch.delenv("PODS_FAULTS")
        result = p.run_parallel((6,), workers=2)
        assert result.value[6, 6] == pytest.approx(36.25)
        assert_no_leaked_segments()

    def test_delayed_writes_stay_correct(self):
        # The delay fault widens race windows without changing results.
        p = compile_source(FILL)
        seq = p.run_sequential((6,))
        par = p.run_parallel((6,), workers=2,
                             faults="delay:worker=1,on=write,seconds=0.001")
        assert par.value.flat == seq.value.flat
        assert_no_leaked_segments()


class TestTelemetry:
    def test_per_worker_stats_populated(self):
        p = compile_source(FILL)
        n = 10
        result = p.run_parallel((n,), workers=2)
        assert len(result.worker_stats) == 2
        assert [t.worker for t in result.worker_stats] == [0, 1]
        # Every element is written exactly once, by exactly one worker.
        assert sum(t.shared_writes for t in result.worker_stats) == n * n
        for t in result.worker_stats:
            assert t.wall_time_s > 0.0
            assert t.rf_subranges, "distributed loop should report its RF"
        table = result.telemetry_table()
        assert "worker" in table and "rf-subranges" in table

    def test_deferred_reads_counted_on_cross_worker_sweep(self):
        p = compile_source("""
        function main(n) {
            B = matrix(n, n);
            for j = 1 to n { B[1, j] = 1.0 * j; }
            for i = 2 to n {
                for j = 1 to n { B[i, j] = B[i - 1, j] + 1.0; }
            }
            return B;
        }
        """)
        result = p.run_parallel((16,), workers=4)
        stats = result.worker_stats
        assert sum(t.shared_reads for t in stats) > 0
        # Spin-wait accounting can only be nonzero if a read deferred.
        for t in stats:
            if t.max_spin_wait_s > 0:
                assert t.deferred_reads > 0


class TestManifestCleanup:
    def test_cleanup_survives_gaps(self):
        # The old sequential probe stopped at the first missing name,
        # leaking everything past a gap; the manifest must not.
        from repro.parallel.manifest import ShmManifest
        from repro.parallel.shm_arrays import ShmArray

        tag = "podsmanifesttest"
        manifest = ShmManifest.create(tag)
        arrays = []
        for seq in (1, 2, 3):
            manifest.record(f"{tag}_{seq}")
            if seq != 2:  # gap: segment 2 recorded but never created
                arrays.append(ShmArray(f"{tag}_{seq}", (4,), create=True))
        for arr in arrays:
            arr.close()
        removed = manifest.cleanup()
        assert sorted(removed) == [f"{tag}_1", f"{tag}_3"]
        assert not glob.glob(f"/dev/shm/{tag}*")

    def test_cleanup_sweeps_unrecorded_prefix_segments(self):
        from repro.parallel.manifest import ShmManifest
        from repro.parallel.shm_arrays import ShmArray

        tag = "podssweeptest"
        manifest = ShmManifest.create(tag)
        arr = ShmArray(f"{tag}_9", (4,), create=True)  # never recorded
        arr.close()
        assert f"{tag}_9" in manifest.cleanup()
        assert not glob.glob(f"/dev/shm/{tag}*")
