"""Fault × recovery matrix for the self-healing parallel backend.

Every recovery path — respawn after crash in each phase (before, mid,
after writes), double-crash of the same subrange, crash-on-respawn,
hang-in-spin, retry exhaustion → degraded-mode takeover, global budget
exhaustion — is provoked deterministically and must either heal with
results bit-identical to the sequential baseline or abort with a
structured :class:`ParallelExecutionError`, in both cases leaking zero
shared-memory segments.
"""

import glob
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.api import compile_source
from repro.common.config import ParallelConfig
from repro.common.errors import (DeferredReadTimeout, ParallelExecutionError,
                                 SingleAssignmentViolation, WorkerSuperseded)
from repro.parallel.recovery import RecoveryEvent, RecoveryLog, RetryPolicy
from repro.parallel.shm_arrays import ShmArray

FILL = """
function main(n) {
    A = matrix(n, n);
    for i = 1 to n {
        for j = 1 to n { A[i, j] = 1.0 * i * j + 0.25; }
    }
    return A;
}
"""

SWEEP = """
function main(n) {
    B = matrix(n, n);
    for j = 1 to n { B[1, j] = 1.0 * j; }
    for i = 2 to n {
        for j = 1 to n { B[i, j] = B[i - 1, j] + 1.0; }
    }
    return B;
}
"""

MISSING_WRITE = """
function main(n) {
    A = array(n);
    for i = 1 to n { if i != 3 { A[i] = i; } }
    s = 0;
    for i = 1 to n { next s = s + A[i]; }
    return s;
}
"""

# Shrunk supervisor/backoff timings so the whole matrix runs in seconds.
FAST = dict(poll_interval_s=0.02, grace_s=0.2, retry_backoff_s=0.01,
            retry_backoff_max_s=0.05)


def fast_cfg(workers=2, **kw) -> ParallelConfig:
    merged = dict(FAST)
    merged.update(kw)
    return ParallelConfig(workers=workers, **merged)


def assert_no_leaked_segments():
    assert not glob.glob("/dev/shm/pods*"), "leaked shared memory"


# RetryPolicy's unit tests moved to tests/common/test_retry.py when the
# policy was hoisted into repro.common.retry (shared with repro.dist).


class TestOwnershipEpochs:
    def test_epochs_start_zero_and_are_monotonic(self):
        a = ShmArray("podsepochmono", (8,), create=True, epoch_slots=2)
        try:
            assert a.epoch(0) == 0 and a.epoch(1) == 0
            a.set_epoch(1, 3)
            a.set_epoch(1, 2)  # never lowers
            assert a.epoch(1) == 3
        finally:
            a.close()
            a.unlink()

    def test_stale_generation_is_superseded(self):
        name = "podsepochstale"
        old = ShmArray(name, (8,), create=True, epoch_slots=2,
                       slot=1, generation=1)
        new = ShmArray(name, (8,), create=False, epoch_slots=2,
                       slot=1, generation=2)
        try:
            with pytest.raises(WorkerSuperseded) as exc:
                old.write((1,), 1.0)
            assert (exc.value.worker, exc.value.generation,
                    exc.value.current) == (1, 1, 2)
            new.write((1,), 1.0)  # the successor is not superseded
            assert new.read((1,)) == 1.0
        finally:
            old.close()
            new.close()
            new_shm = ShmArray(name, (8,), create=False, epoch_slots=2)
            new_shm.close()
            new_shm.unlink()

    def test_replay_tolerates_present_elements_but_checks_values(self):
        name = "podsreplaycheck"
        a = ShmArray(name, (4,), create=True)
        replay = ShmArray(name, (4,), create=False, replay=True)
        try:
            a.write((1,), 2.0)
            replay.write((1,), 2.0)  # identical value: benign no-op
            assert replay.replayed_present == 1
            with pytest.raises(SingleAssignmentViolation):
                replay.write((1,), 3.0)  # a genuine double write
        finally:
            a.close()
            replay.close()
            gone = ShmArray(name, (4,), create=False)
            gone.close()
            gone.unlink()

    def test_exist_ok_create_falls_back_to_attach(self):
        name = "podsexistok"
        a = ShmArray(name, (4,), create=True)
        b = ShmArray(name, (4,), create=True, exist_ok=True)
        try:
            a.write((2,), 5)
            assert b.read((2,)) == 5
        finally:
            a.close()
            b.close()
            gone = ShmArray(name, (4,), create=False)
            gone.close()
            gone.unlink()


class TestStallWatchdog:
    def test_deferred_read_timeout_is_structured(self):
        a = ShmArray("podsdrtimeout", (4,), create=True)
        try:
            with pytest.raises(DeferredReadTimeout) as exc:
                a.read((2,), timeout_s=0.05)
            e = exc.value
            assert e.array == "podsdrtimeout"
            assert e.indices == (2,)
            assert e.offset == 1
            assert e.owner == 0
            assert e.waited_s >= 0.05
            assert "deadlock" in str(e)
        finally:
            a.close()
            a.unlink()

    def test_spin_ceiling_reports_stalls(self):
        a = ShmArray("podsstallrep", (4,), create=True)
        reports = []
        try:
            with pytest.raises(DeferredReadTimeout):
                a.read((2,), timeout_s=0.22, spin_ceiling_s=0.05,
                       on_stall=reports.append)
            assert len(reports) >= 2, "one report per ceiling crossing"
            assert reports[0]["array"] == "podsstallrep"
            assert reports[0]["offset"] == 1
            assert reports[0]["owner"] == 0
            assert reports[1]["waited_s"] > reports[0]["waited_s"]
            assert a.stall_reports == len(reports)
        finally:
            a.close()
            a.unlink()

    def test_quorum_deadlock_aborts_before_read_timeout(self):
        # Every live worker provably blocked at one instant -> causal
        # abort, long before the 30 s read timeout.
        p = compile_source(MISSING_WRITE)
        cfg = fast_cfg(workers=2, read_timeout_s=30.0, spin_ceiling_s=0.05)
        start = time.monotonic()
        with pytest.raises(ParallelExecutionError) as exc:
            p.run_parallel((8,), config=cfg)
        assert time.monotonic() - start < 10.0
        assert "deadlock" in str(exc.value)
        assert exc.value.failures
        assert all(f.kind == "stall" for f in exc.value.failures)
        assert exc.value.recovery is not None
        assert exc.value.recovery.stall_reports > 0
        assert_no_leaked_segments()

    def test_hang_in_spin_is_reported_then_heals_itself(self):
        # A worker that stalls *transiently* inside a spin produces
        # watchdog reports but no abort: the run completes bit-identical.
        # The write delay keeps worker 0 behind the sweep front so the
        # last worker's boundary read genuinely spins (start skew would
        # otherwise let it find the element already present).
        p = compile_source(SWEEP)
        seq = p.run_sequential((12,))
        cfg = fast_cfg(workers=2, spin_ceiling_s=0.05)
        res = p.run_parallel(
            (12,), config=cfg,
            faults="hang:worker=1,on=spin,seconds=0.3;"
                   "delay:worker=0,on=write,seconds=0.005")
        assert res.value.flat == seq.value.flat
        assert res.recovery.respawns == 0
        assert res.recovery.stall_reports >= 1, \
            "the watchdog should have reported the spin"
        assert_no_leaked_segments()


class TestRecoveryMatrix:
    """Injected crash in every phase: heal, bit-identical, counted."""

    def _seq(self, n=10):
        return compile_source(FILL).run_sequential((n,)).value.flat

    def heal(self, faults, n=10, **cfg_kw):
        p = compile_source(FILL)
        cfg = fast_cfg(**cfg_kw)
        res = p.run_parallel((n,), config=cfg, faults=faults)
        assert res.value.flat == self._seq(n), "not bit-identical"
        assert_no_leaked_segments()
        return res

    def test_crash_before_any_write(self):
        res = self.heal("kill:worker=1,on=iter,after=0")
        assert res.recovery.respawns == 1
        assert res.recovery.takeovers == 0
        assert res.registry.value("recovery.respawns") == 1
        assert res.registry.value("recovery.failures_seen") == 1

    def test_crash_mid_write_replays_exact_prefix(self):
        # fire() triggers on the sixth write event, i.e. after exactly
        # five completed shared writes — the replay must observe exactly
        # those five elements as already present.
        res = self.heal("kill:worker=1,on=write,after=5")
        assert res.recovery.respawns == 1
        assert res.recovery.replayed_elements == 5
        assert res.registry.value("recovery.replayed_elements") == 5

    def test_crash_after_all_writes(self):
        # Dies at the result event: every element of its subrange is
        # already present, so the whole replay is presence-bit no-ops.
        res = self.heal("kill:worker=1,on=result")
        assert res.recovery.respawns == 1
        t1 = res.worker_stats[1]
        assert res.recovery.replayed_elements == t1.shared_writes
        assert t1.shared_writes > 0

    def test_double_crash_of_same_subrange(self):
        # Crash on the original run AND on the first respawn
        # (crash-on-respawn, gen=2); the second respawn completes.
        res = self.heal("kill:worker=1,on=iter,after=2;"
                        "kill:worker=1,on=iter,after=1,gen=2")
        assert res.recovery.respawns == 2
        assert res.recovery.failures_seen == 2
        gens = [e.generation for e in res.recovery.events
                if e.kind == "respawn"]
        assert gens == [2, 3]

    def test_lost_worker_is_healed_too(self):
        # A clean exit without a result ("drop") is retriable like a
        # crash — the subrange replays.
        res = self.heal("drop:worker=1")
        assert res.recovery.respawns == 1

    def test_retry_exhaustion_escalates_to_takeover(self):
        # Zero per-worker retries: the first crash orphans identity 1,
        # which a degraded-mode recovery worker then adopts.
        res = self.heal("kill:worker=1,on=iter,after=2",
                        max_retries_per_worker=0)
        assert res.recovery.respawns == 0
        assert res.recovery.takeovers == 1
        assert res.registry.value("recovery.takeovers") == 1
        takeover = [e for e in res.recovery.events if e.kind == "takeover"]
        assert takeover and "(1,)" in takeover[0].detail

    def test_takeover_merges_when_crash_persists(self):
        # The fault re-fires in every generation (gen=0): respawns burn
        # the per-worker budget, then takeovers burn global budget until
        # it exhausts — a structured error, never a hang or a leak.
        p = compile_source(FILL)
        cfg = fast_cfg(max_retries_per_worker=1, max_retries_total=3)
        with pytest.raises(ParallelExecutionError) as exc:
            p.run_parallel((10,), config=cfg, faults="kill:worker=1,gen=0")
        assert "recovery budget exhausted" in str(exc.value)
        assert exc.value.recovery.respawns >= 1
        assert_no_leaked_segments()

    def test_all_workers_exhausted_raises_structured(self):
        p = compile_source(FILL)
        cfg = fast_cfg(max_retries_per_worker=1, max_retries_total=4)
        with pytest.raises(ParallelExecutionError) as exc:
            p.run_parallel((10,), config=cfg,
                           faults="kill:worker=0,gen=0;kill:worker=1,gen=0")
        assert exc.value.failures
        assert exc.value.recovery is not None
        assert "recovery:" in str(exc.value)
        assert_no_leaked_segments()

    def test_recovery_disabled_fails_fast(self):
        p = compile_source(FILL)
        cfg = fast_cfg(recovery=False)
        with pytest.raises(ParallelExecutionError) as exc:
            p.run_parallel((10,), config=cfg,
                           faults="kill:worker=1,on=iter,after=2")
        (failure,) = exc.value.failures
        assert failure.kind == "crash"
        assert_no_leaked_segments()

    def test_zero_fault_registry_has_no_recovery_rows(self):
        # The recovery.* family must appear only when something
        # happened, so zero-fault registries stay identical across
        # recovery on/off (cross-backend differential + bench goldens).
        p = compile_source(FILL)
        on = p.run_parallel((8,), config=fast_cfg())
        off = p.run_parallel((8,), config=fast_cfg(recovery=False))
        strip = ("par.wall_time_s", "par.spin_wait_s", "par.max_spin_wait_s",
                 "wait.us", "array.deferred_reads")

        def stable_rows(reg):
            return [r for r in reg.rows() if r.name not in strip]

        assert stable_rows(on.registry) == stable_rows(off.registry)
        assert not [r for r in on.registry.rows()
                    if r.name.startswith("recovery.")]
        assert on.recovery is not None and not on.recovery.events
        assert_no_leaked_segments()

    def test_healed_run_exports_valid_recovery_trace(self):
        import json

        from repro.obs.export import (parallel_trace, parallel_trace_json,
                                      validate_trace_events)

        res = self.heal("kill:worker=1,on=iter,after=1")
        trace = parallel_trace(res)
        assert validate_trace_events(trace) == []
        names = [e["name"] for e in trace["traceEvents"]]
        assert "failure" in names             # instant on the crash
        assert "respawn backoff" in names     # span covering the backoff
        assert "worker1 RECOVERY" in str(
            [e for e in trace["traceEvents"] if e["ph"] == "M"])
        # The JSON form is byte-stable and round-trips.
        assert json.loads(parallel_trace_json(res)) == trace


class TestRecoveryLog:
    def test_event_kind_is_validated(self):
        with pytest.raises(ValueError):
            RecoveryEvent(0.0, "reboot", 0)

    def test_counters_follow_events(self):
        log = RecoveryLog()
        log.record(RecoveryEvent(0.1, "failure", 1, 1, "crash"))
        log.record(RecoveryEvent(0.2, "respawn", 1, 2, "attempt 1",
                                 dur_s=0.05))
        log.record(RecoveryEvent(0.3, "takeover", 1, 3, "ids (1,)",
                                 dur_s=0.02))
        log.record(RecoveryEvent(0.4, "stall", 0, 1, "A[3]"))
        assert (log.failures_seen, log.respawns, log.takeovers,
                log.stall_reports) == (1, 1, 1, 1)
        assert log.backoff_total_s == pytest.approx(0.07)
        assert log.healed
        table = log.table()
        assert "respawn" in table and "takeover" in table
        assert "failures=1" in log.summary()

    def test_empty_log_renders_quietly(self):
        log = RecoveryLog()
        assert not log.healed
        assert "(no recovery activity)" in log.table()


INTERRUPT_SCRIPT = """
import sys
from repro.api import compile_source

p = compile_source('''
function main(n) {
    A = matrix(n, n);
    for i = 1 to n {
        for j = 1 to n { A[i, j] = 1.0 * i * j; }
    }
    return A;
}
''')
print("READY", flush=True)
try:
    p.run_parallel((12,), workers=2, timeout_s=60.0,
                   faults="hang:worker=1,on=iter,after=1,seconds=120")
except KeyboardInterrupt:
    sys.exit(42)
sys.exit(1)
"""


class TestGracefulInterrupt:
    def test_sigterm_cleans_up_and_reraises(self, tmp_path):
        script = tmp_path / "interrupt_victim.py"
        script.write_text(INTERRUPT_SCRIPT)
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env["PYTHONPATH"] = os.path.join(root, "src")
        proc = subprocess.Popen([sys.executable, str(script)], env=env,
                                stdout=subprocess.PIPE, text=True)
        try:
            assert proc.stdout.readline().strip() == "READY"
            # Give the workers time to start and allocate shared memory.
            time.sleep(1.5)
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        # SIGTERM became KeyboardInterrupt, which run_parallel re-raised
        # after terminating the workers and unlinking every segment.
        assert rc == 42
        assert_no_leaked_segments()
