"""Church-Rosser under chaos: fault plans never change the answer.

Single assignment makes every execution order confluent, and the
reliable-delivery layer (:mod:`repro.sim.reliable`) extends that to
*unreliable* orders: any seeded plan of reorder/duplicate/delay faults —
and any drop plan the retransmit budget can absorb — must yield results
bit-identical to the fault-free run, with identical semantic ``array.*``
metrics.  Only modeled time is allowed to move.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import compile_source
from repro.apps.matmul import compile_matmul
from repro.common.config import MachineConfig, ObsConfig, SimConfig

ROW_SWEEP = """
function main(n) {
    B = matrix(n, n);
    for j = 1 to n { B[1, j] = 1.0 * j; }
    for i = 2 to n {
        for j = 1 to n { B[i, j] = B[i - 1, j] * 0.5 + 1.0; }
    }
    s = 0.0;
    for j = 1 to n { next s = s + B[n, j]; }
    return s;
}
"""

# (program, args) pairs the properties quantify over; compiled (and the
# fault-free reference computed) once per process.
_CASES: dict[str, tuple] = {}

# Semantic registry rows: counts of program facts, invariant under any
# healed chaos.  array.deferred_reads is timing-dependent (a read
# arriving before vs after its write) and deliberately excluded.
SEMANTIC_METRICS = ("array.element_reads", "array.element_writes",
                    "array.write_forwards", "array.pages_touched",
                    "rf.subrange", "rf.items")

# Message kinds that actually occur in these programs at 2 PEs, so
# generated clauses exercise real traffic (an unmatched clause is a
# vacuous no-op).
KINDS = ("", "bcast", "read", "page", "value", "alloc", "ack")


def _case(name):
    if name not in _CASES:
        if name == "row-sweep":
            program, args = compile_source(ROW_SWEEP), (6,)
        else:
            program, args = compile_matmul(checksum=True), (4,)
        clean = program.run_pods(args, config=_config())
        _CASES[name] = (program, args, clean.value,
                        _semantic_rows(clean.stats.registry))
    return _CASES[name]


def _config(faults=None, **kw):
    return SimConfig(machine=MachineConfig(num_pes=2),
                     obs=ObsConfig(metrics=True), faults=faults, **kw)


def _semantic_rows(registry):
    return [line for line in registry.to_jsonl().splitlines()
            if json.loads(line)["name"] in SEMANTIC_METRICS]


def _clause(action, kind, after, count, us, seed):
    parts = [f"after={after}", f"count={count}", f"seed={seed}"]
    if kind:
        parts.append(f"kind={kind}")
    if us and action in ("delay", "reorder"):
        parts.append(f"us={us:g}")
    return f"{action}:" + ",".join(parts)


# One generated fault clause: strategy tuples -> spec text.
_benign_clauses = st.lists(
    st.tuples(st.sampled_from(["dup", "delay", "reorder"]),
              st.sampled_from(KINDS),
              st.integers(0, 5),        # after
              st.integers(0, 4),        # count (0 = unlimited)
              st.sampled_from([0, 50, 400, 1200]),   # us
              st.integers(0, 2 ** 16)),              # seed
    min_size=1, max_size=4)

_drop_clauses = st.lists(
    st.tuples(st.sampled_from(KINDS),
              st.integers(0, 3),        # after
              st.integers(1, 3),        # count: bounded, budget absorbs
              st.integers(0, 2 ** 16)),
    min_size=1, max_size=2)


def _assert_confluent(name, spec, **cfg_kw):
    program, args, want_value, want_rows = _case(name)
    res = program.run_pods(args, config=_config(faults=spec, **cfg_kw))
    assert res.value == want_value, spec
    assert _semantic_rows(res.stats.registry) == want_rows, spec


@settings(max_examples=25, deadline=None)
@given(clauses=_benign_clauses)
def test_row_sweep_confluent_under_reorder_dup_delay(clauses):
    spec = ";".join(_clause(*c) for c in clauses)
    _assert_confluent("row-sweep", spec)


@settings(max_examples=12, deadline=None)
@given(clauses=_benign_clauses)
def test_matmul_confluent_under_reorder_dup_delay(clauses):
    spec = ";".join(_clause(*c) for c in clauses)
    _assert_confluent("matmul", spec)


@settings(max_examples=20, deadline=None)
@given(clauses=_drop_clauses, prob=st.sampled_from([1.0, 0.5]))
def test_drop_plans_heal_within_retransmit_budget(clauses, prob):
    spec = ";".join(
        f"drop:kind={kind},after={after},count={count},"
        f"prob={prob},seed={seed}" if kind else
        f"drop:after={after},count={count},prob={prob},seed={seed}"
        for kind, after, count, seed in clauses)
    # A fast timer so every drop heals inside the run; each clause loses
    # at most `count` copies per channel, well inside the budget of 8.
    _assert_confluent("row-sweep", spec, retransmit_timeout_us=800.0)


@settings(max_examples=10, deadline=None)
@given(clauses=_benign_clauses)
def test_chaos_runs_are_replayable(clauses):
    spec = ";".join(_clause(*c) for c in clauses)
    program, args, _, _ = _case("row-sweep")
    runs = [program.run_pods(args, config=_config(faults=spec))
            for _ in range(2)]
    assert (runs[0].stats.finish_time_us == runs[1].stats.finish_time_us)
    assert (runs[0].stats.registry.to_jsonl()
            == runs[1].stats.registry.to_jsonl())
