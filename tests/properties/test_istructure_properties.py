"""Property tests on I-structure storage invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SingleAssignmentViolation
from repro.runtime.istructure import ABSENT, IStructureSegment, PageCache


@given(ops=st.lists(
    st.tuples(st.sampled_from(["write", "read", "defer"]),
              st.integers(0, 15), st.integers(-100, 100)),
    max_size=80,
))
def test_segment_invariants_under_random_ops(ops):
    """Random interleavings of write/read/defer keep the invariants:
    written-once values never change, deferred readers are woken exactly
    once by the single write, waiters wake FIFO."""
    seg = IStructureSegment(1, 0, 16)
    model: dict[int, int] = {}
    deferred: dict[int, list[str]] = {}
    waiter_id = 0

    for op, off, value in ops:
        if op == "write":
            if off in model:
                with pytest.raises(SingleAssignmentViolation):
                    seg.write(off, value)
            else:
                woken = seg.write(off, value)
                model[off] = value
                assert woken == deferred.pop(off, [])
        elif op == "read":
            present, got = seg.read(off)
            assert present == (off in model)
            if present:
                assert got == model[off]
        else:  # defer
            if off in model:
                with pytest.raises(RuntimeError):
                    seg.defer(off, "late")
            else:
                waiter_id += 1
                tag = f"w{waiter_id}"
                seg.defer(off, tag)
                deferred.setdefault(off, []).append(tag)

    # Leftover deferred readers are exactly the ones never written.
    assert seg.pending_offsets() == sorted(deferred)
    assert seg.present_count() == len(model)
    assert dict(seg.items()) == model


@given(
    writes=st.lists(st.tuples(st.integers(0, 31), st.integers(0, 1000)),
                    max_size=40),
)
def test_page_snapshot_reflects_exact_presence(writes):
    seg = IStructureSegment(1, 0, 32)
    model = {}
    for off, value in writes:
        if off not in model:
            seg.write(off, value)
            model[off] = value
    cells = seg.snapshot_page(0, 32)
    for off in range(32):
        if off in model:
            assert cells[off] == model[off]
        else:
            assert cells[off] is ABSENT


@given(
    entries=st.lists(
        st.tuples(st.integers(1, 3), st.integers(0, 5), st.integers(0, 100)),
        max_size=40),
)
def test_cache_never_fabricates_values(entries):
    """A cache hit always returns a value previously installed for that
    exact (array, page, offset)."""
    cache = PageCache()
    installed = {}
    for array_id, page, value in entries:
        page_lo = page * 8
        cells = [value + i for i in range(8)]
        cache.install(array_id, page, page_lo, cells)
        for i in range(8):
            installed[(array_id, page, page_lo + i)] = value + i
    for (array_id, page, offset), expect in installed.items():
        hit, got = cache.lookup(array_id, page, offset)
        assert hit and got == expect
