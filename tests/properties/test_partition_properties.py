"""Property tests on the partitioning math (paper Section 4.1-4.2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.arrays import ArrayHeader, segment_of_page, segment_page_range

dims_2d = st.tuples(st.integers(1, 40), st.integers(1, 40))
dims_any = st.one_of(
    st.tuples(st.integers(1, 60)),
    dims_2d,
    st.tuples(st.integers(1, 8), st.integers(1, 8), st.integers(1, 8)),
)
page_sizes = st.integers(1, 64)
pe_counts = st.integers(1, 33)


@given(pages=st.integers(1, 500), pes=pe_counts)
def test_segments_partition_pages(pages, pes):
    """Every page belongs to exactly one PE and ranges are contiguous."""
    covered = 0
    prev_hi = 0
    sizes = []
    for pe in range(pes):
        lo, hi = segment_page_range(pe, pages, pes)
        assert lo == prev_hi, "segments must be contiguous and ordered"
        prev_hi = hi
        sizes.append(hi - lo)
        for page in range(lo, hi):
            assert segment_of_page(page, pages, pes) == pe
        covered += hi - lo
    assert covered == pages
    # "approximately equal size": at most one page difference.
    nonzero = [s for s in sizes if s] or [0]
    assert max(sizes) - min(nonzero) <= 1


@given(dims=dims_any, page=page_sizes, pes=pe_counts)
def test_every_element_has_exactly_one_owner(dims, page, pes):
    h = ArrayHeader(1, dims, page, pes)
    for off in range(h.total_elements):
        owner = h.owner_of_offset(off)
        assert h.is_local(off, owner)
        for pe in range(pes):
            if pe != owner:
                assert not h.is_local(off, pe)


@given(dims=dims_any, page=page_sizes, pes=pe_counts)
def test_segment_bounds_partition_offsets(dims, page, pes):
    h = ArrayHeader(1, dims, page, pes)
    total = 0
    for pe in range(pes):
        lo, hi = h.segment_bounds(pe)
        assert 0 <= lo <= hi <= h.total_elements
        total += hi - lo
    assert total == h.total_elements


@given(dims=dims_2d, page=page_sizes, pes=pe_counts)
def test_responsible_rows_disjoint_cover(dims, page, pes):
    """First-element ownership assigns every row to exactly one PE."""
    h = ArrayHeader(1, dims, page, pes)
    assignment = {}
    for pe in range(pes):
        lo, hi = h.responsible_rows(pe)
        for row in range(lo, hi + 1):
            assert row not in assignment, "row assigned twice"
            assignment[row] = pe
    assert sorted(assignment) == list(range(1, dims[0] + 1))
    # The responsible PE indeed owns the row's first element.
    for row, pe in assignment.items():
        assert h.owner_of((row, 1) if len(dims) == 2 else (row,)) == pe


@given(dims=dims_2d, page=page_sizes, pes=pe_counts,
       init=st.integers(1, 40), limit=st.integers(1, 40),
       descending=st.booleans())
def test_filtered_ranges_partition_the_loop_range(dims, page, pes, init,
                                                  limit, descending):
    """The union of all PEs' Range-Filter outputs is exactly the original
    iteration set, with no overlap (Section 4.2.2)."""
    h = ArrayHeader(1, dims, page, pes)
    if descending:
        init, limit = max(init, limit), min(init, limit)
        wanted = set(range(limit, init + 1)) & set(range(1, dims[0] + 1))
    else:
        init, limit = min(init, limit), max(init, limit)
        wanted = set(range(init, limit + 1)) & set(range(1, dims[0] + 1))

    seen = set()
    for pe in range(pes):
        first, last = h.filtered_range(pe, init, limit, descending=descending)
        if descending:
            iters = range(first, last - 1, -1)
        else:
            iters = range(first, last + 1)
        for i in iters:
            assert i not in seen, f"iteration {i} runs on two PEs"
            seen.add(i)
    assert seen == wanted


@given(dims=dims_2d, page=page_sizes, pes=pe_counts,
       data=st.data())
def test_inner_dimension_ranges_partition_each_row(dims, page, pes, data):
    """The generalized RF (fixed leading indices) also tiles exactly:
    for every row k, the j-ranges over all PEs partition 1..cols."""
    h = ArrayHeader(1, dims, page, pes)
    k = data.draw(st.integers(1, dims[0]))
    seen = set()
    for pe in range(pes):
        first, last = h.filtered_range(pe, 1, dims[1], fixed=(k,), dim=1)
        for j in range(first, last + 1):
            assert j not in seen
            seen.add(j)
    assert seen == set(range(1, dims[1] + 1))


@given(dims=dims_any, page=page_sizes, pes=pe_counts)
@settings(max_examples=50)
def test_offset_indices_bijection(dims, page, pes):
    h = ArrayHeader(1, dims, page, pes)
    for off in range(0, h.total_elements,
                     max(1, h.total_elements // 37)):
        assert h.offset(h.indices_of(off)) == off
