"""Differential property tests: random expressions and programs must
evaluate identically on the host (Python), the sequential interpreter,
and the PODS machine at any PE count — and identically under message
jitter (the Church-Rosser property of paper Section 2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import compile_source
from repro.common.config import MachineConfig, SimConfig

# -- random expression generator ---------------------------------------
# Each draw yields (idlite_source_fragment, python_value) built from the
# same tree, so the expected value is computed independently of every
# backend under test.


@st.composite
def exprs(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        kind = draw(st.sampled_from(["int", "float", "var"]))
        if kind == "int":
            v = draw(st.integers(-9, 9))
            return (f"({v})" if v < 0 else str(v)), v
        if kind == "float":
            v = draw(st.floats(min_value=-4, max_value=4, width=32,
                               allow_nan=False, allow_infinity=False))
            v = round(v, 3)
            return (f"({v})" if v < 0 else repr(v)), v
        name = draw(st.sampled_from(["a", "b"]))
        return name, {"a": 3, "b": 1.5}[name]

    op = draw(st.sampled_from(
        ["add", "sub", "mul", "div", "min", "max", "abs", "neg",
         "sqrt", "ifexp"]))
    left_src, left_val = draw(exprs(depth=depth + 1))

    if op == "abs":
        return f"abs({left_src})", abs(left_val)
    if op == "neg":
        return f"(-({left_src}))", -left_val
    if op == "sqrt":
        return f"sqrt(abs({left_src}) + 1)", math.sqrt(abs(left_val) + 1)

    right_src, right_val = draw(exprs(depth=depth + 1))
    if op == "add":
        return f"({left_src} + {right_src})", left_val + right_val
    if op == "sub":
        return f"({left_src} - {right_src})", left_val - right_val
    if op == "mul":
        return f"({left_src} * {right_src})", left_val * right_val
    if op == "div":
        return (f"({left_src} / (abs({right_src}) + 1))",
                left_val / (abs(right_val) + 1))
    if op == "min":
        return f"min({left_src}, {right_src})", min(left_val, right_val)
    if op == "max":
        return f"max({left_src}, {right_src})", max(left_val, right_val)
    # ifexp
    cond_src = f"({left_src} < {right_src})"
    taken = left_val < right_val
    then_src, then_val = draw(exprs(depth=depth + 1))
    else_src, else_val = draw(exprs(depth=depth + 1))
    return (f"(if {cond_src} then {then_src} else {else_src})",
            then_val if taken else else_val)


@given(expr=exprs())
@settings(max_examples=60, deadline=None)
def test_expression_agreement_host_sequential_pods(expr):
    src, expected = expr
    program = compile_source(
        f"function main(a, b) {{ return {src}; }}")
    seq = program.run_sequential((3, 1.5))
    pods = program.run_pods((3, 1.5), num_pes=1)
    assert seq.value == pytest.approx(expected, rel=1e-12, abs=1e-12)
    assert pods.value == pytest.approx(expected, rel=1e-12, abs=1e-12)


# -- whole-program invariances -------------------------------------------

TEMPLATE = """
function main(n, seed) {
    A = matrix(n, n);
    B = matrix(n, n);
    for i = 1 to n {
        for j = 1 to n {
            A[i, j] = 1.0 * ((i * seed + j * 3) % 17) + 0.5;
        }
    }
    for j = 1 to n { B[1, j] = A[1, j]; }
    for i = 2 to n {
        for j = 1 to n { B[i, j] = 0.5 * B[i - 1, j] + A[i, j]; }
    }
    s = 0.0;
    for i = 1 to n {
        row = 0.0;
        for j = 1 to n { next row = row + B[i, j]; }
        next s = s + row;
    }
    return s;
}
"""


@given(n=st.integers(2, 9), seed=st.integers(1, 50),
       pes=st.integers(2, 9))
@settings(max_examples=12, deadline=None)
def test_result_invariant_under_pe_count(n, seed, pes):
    program = compile_source(TEMPLATE)
    base = program.run_sequential((n, seed)).value
    assert program.run_pods((n, seed), num_pes=pes).value == \
        pytest.approx(base, rel=1e-12)


@given(n=st.integers(3, 7), seed=st.integers(1, 50),
       jitter=st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_church_rosser_under_jitter(n, seed, jitter):
    """Scheduling perturbations change timings, never answers."""
    program = compile_source(TEMPLATE)
    plain = program.run_pods((n, seed), num_pes=4)
    config = SimConfig(machine=MachineConfig(num_pes=4),
                       jitter_seed=jitter, jitter_max_us=500.0)
    jittered = program.run_pods((n, seed), num_pes=4, config=config)
    assert jittered.value == plain.value


@given(page=st.integers(1, 64), pes=st.integers(1, 8))
@settings(max_examples=10, deadline=None)
def test_result_invariant_under_page_size(page, pes):
    program = compile_source(TEMPLATE)
    base = program.run_sequential((6, 7)).value
    config = SimConfig(machine=MachineConfig(num_pes=pes, page_size=page))
    got = program.run_pods((6, 7), num_pes=pes, config=config).value
    assert got == pytest.approx(base, rel=1e-12)


# -- optimizer equivalence ----------------------------------------------


@st.composite
def loop_exprs(draw, depth=0, allow_index=True):
    """Expression over invariants a, b and (optionally) the loop index i
    (source text only; the oracle is the unoptimized compile)."""
    if depth >= 3 or draw(st.booleans()):
        kinds = ["int", "var", "var"] + (["idx"] if allow_index else [])
        kind = draw(st.sampled_from(kinds))
        if kind == "int":
            v = draw(st.integers(-9, 9))
            return f"({v})" if v < 0 else str(v)
        if kind == "idx":
            return "i"
        return draw(st.sampled_from(["a", "b"]))
    op = draw(st.sampled_from(["+", "-", "*", "min", "max", "abs"]))
    left = draw(loop_exprs(depth=depth + 1, allow_index=allow_index))
    if op == "abs":
        return f"abs({left})"
    right = draw(loop_exprs(depth=depth + 1, allow_index=allow_index))
    if op in ("min", "max"):
        return f"{op}({left}, {right})"
    return f"({left} {op} {right})"


@given(body=loop_exprs(), tail=loop_exprs(allow_index=False),
       a=st.integers(-5, 5),
       b=st.integers(-5, 5))
@settings(max_examples=40, deadline=None)
def test_optimizer_preserves_semantics(body, tail, a, b):
    """CSE + hoisting + DCE must be invisible in results, for random
    loop bodies mixing invariants and index-dependent terms."""
    src = f"""
    function main(a, b) {{
        A = array(8);
        for i = 1 to 8 {{
            A[i] = {body} + i;
        }}
        s = 0;
        for i = 1 to 8 {{ next s = s + A[i]; }}
        unused = {tail};
        return s + {tail};
    }}
    """
    plain = compile_source(src)
    opt = compile_source(src, optimize=True)
    expected = plain.run_sequential((a, b)).value
    assert opt.run_sequential((a, b)).value == expected
    assert plain.run_pods((a, b), num_pes=2).value == expected
    assert opt.run_pods((a, b), num_pes=2).value == expected


@given(expr=exprs())
@settings(max_examples=60, deadline=None)
def test_pretty_printer_round_trip(expr):
    """parse -> print -> parse is the identity on random expressions."""
    from repro.lang.parser import parse_expression
    from repro.lang.pprint import ast_fingerprint, format_expr

    src, _ = expr
    tree = parse_expression(src)
    printed = format_expr(tree)
    assert ast_fingerprint(parse_expression(printed)) == ast_fingerprint(tree)
