"""Tests for I-structure storage: presence, deferral, single assignment."""

import pytest

from repro.common.errors import SingleAssignmentViolation
from repro.runtime.istructure import ABSENT, IStructureSegment, PageCache, materialize


class TestSegmentBasics:
    def test_write_then_read(self):
        seg = IStructureSegment(1, 0, 10)
        assert seg.write(3, 42) == []
        assert seg.is_present(3)
        assert seg.read(3) == (True, 42)

    def test_read_absent(self):
        seg = IStructureSegment(1, 0, 10)
        assert not seg.is_present(0)
        assert seg.read(0) == (False, None)

    def test_double_write_raises(self):
        seg = IStructureSegment(5, 0, 4)
        seg.write(2, 1.0)
        with pytest.raises(SingleAssignmentViolation) as exc:
            seg.write(2, 2.0)
        assert exc.value.array_id == 5
        assert exc.value.offset == 2

    def test_double_write_same_value_still_raises(self):
        # Single assignment is about writes, not values.
        seg = IStructureSegment(1, 0, 4)
        seg.write(0, 7)
        with pytest.raises(SingleAssignmentViolation):
            seg.write(0, 7)

    def test_offsets_respect_segment_range(self):
        seg = IStructureSegment(1, 100, 110)
        seg.write(100, "a")
        assert seg.read(109) == (False, None)
        with pytest.raises(IndexError):
            seg.read(99)
        with pytest.raises(IndexError):
            seg.write(110, "x")

    def test_contains(self):
        seg = IStructureSegment(1, 4, 8)
        assert 4 in seg
        assert 7 in seg
        assert 8 not in seg
        assert 3 not in seg

    def test_none_is_a_legal_value(self):
        seg = IStructureSegment(1, 0, 2)
        seg.write(0, None)
        assert seg.is_present(0)
        assert seg.read(0) == (True, None)
        with pytest.raises(SingleAssignmentViolation):
            seg.write(0, None)


class TestDeferredReads:
    def test_write_wakes_waiters_fifo(self):
        seg = IStructureSegment(1, 0, 4)
        seg.defer(1, "reader-a")
        seg.defer(1, "reader-b")
        assert seg.deferred_count(1) == 2
        woken = seg.write(1, 99)
        assert woken == ["reader-a", "reader-b"]
        assert seg.deferred_count(1) == 0

    def test_defer_on_present_is_protocol_error(self):
        seg = IStructureSegment(1, 0, 4)
        seg.write(0, 1)
        with pytest.raises(RuntimeError):
            seg.defer(0, "late")

    def test_pending_offsets_for_deadlock_diagnostics(self):
        seg = IStructureSegment(1, 0, 8)
        seg.defer(5, "x")
        seg.defer(2, "y")
        seg.defer(5, "z")
        assert seg.pending_offsets() == [2, 5]
        assert seg.deferred_count() == 3

    def test_waiters_independent_per_offset(self):
        seg = IStructureSegment(1, 0, 4)
        seg.defer(0, "a")
        seg.defer(1, "b")
        assert seg.write(0, 10) == ["a"]
        assert seg.deferred_count(1) == 1


class TestPageSnapshot:
    def test_snapshot_carries_absence(self):
        seg = IStructureSegment(1, 0, 8)
        seg.write(0, 10)
        seg.write(2, 30)
        cells = seg.snapshot_page(0, 4)
        assert cells[0] == 10
        assert cells[1] is ABSENT
        assert cells[2] == 30
        assert cells[3] is ABSENT

    def test_snapshot_clipped_to_segment(self):
        seg = IStructureSegment(1, 4, 8)
        seg.write(5, "v")
        cells = seg.snapshot_page(0, 8)  # page starts before segment
        assert len(cells) == 4

    def test_items_and_present_count(self):
        seg = IStructureSegment(1, 10, 14)
        seg.write(11, "b")
        seg.write(13, "d")
        assert seg.present_count() == 2
        assert list(seg.items()) == [(11, "b"), (13, "d")]


class TestPageCache:
    def test_miss_then_install_then_hit(self):
        cache = PageCache()
        hit, _ = cache.lookup(1, 0, 3)
        assert not hit
        cache.install(1, 0, 0, [10, 20, 30, 40])
        hit, value = cache.lookup(1, 0, 3)
        assert hit and value == 40
        assert cache.hits == 1
        assert cache.misses == 1

    def test_absent_cell_in_cached_page_is_a_miss(self):
        # "the same page may be copied multiple times in the future as
        # references to previously empty elements are being made"
        cache = PageCache()
        cache.install(2, 5, 160, [1, ABSENT, 3])
        hit, _ = cache.lookup(2, 5, 161)
        assert not hit
        assert cache.refetches == 1
        # Refresh with the now-complete page.
        cache.install(2, 5, 160, [1, 2, 3])
        hit, value = cache.lookup(2, 5, 161)
        assert hit and value == 2

    def test_install_element_merges(self):
        cache = PageCache()
        cache.install_element(1, 0, 0, 4, 2, "late")
        hit, value = cache.lookup(1, 0, 2)
        assert hit and value == "late"
        hit, _ = cache.lookup(1, 0, 1)
        assert not hit

    def test_bounded_cache_evicts_fifo(self):
        cache = PageCache(capacity_pages=2)
        cache.install(1, 0, 0, [1])
        cache.install(1, 1, 32, [2])
        cache.install(1, 2, 64, [3])  # evicts page 0
        assert len(cache) == 2
        hit, _ = cache.lookup(1, 0, 0)
        assert not hit
        hit, _ = cache.lookup(1, 2, 64)
        assert hit

    def test_invalidate_array(self):
        cache = PageCache()
        cache.install(1, 0, 0, [1])
        cache.install(2, 0, 0, [9])
        cache.invalidate_array(1)
        assert not cache.lookup(1, 0, 0)[0]
        assert cache.lookup(2, 0, 0)[0]


class TestMaterialize:
    def test_materialize_with_default(self):
        seg = IStructureSegment(1, 0, 6)
        seg.write(0, 1)
        seg.write(5, 6)
        flat = materialize((2, 3), lambda off: seg.read(off), default=-1)
        assert flat == [1, -1, -1, -1, -1, 6]
