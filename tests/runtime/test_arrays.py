"""Tests for row-major paging, segments, ownership and Range-Filter math."""

import pytest

from repro.common.errors import BoundsViolation, PartitionError
from repro.runtime.arrays import (
    ArrayHeader,
    flat_size,
    index_space_diagram,
    num_pages,
    page_map_diagram,
    row_strides,
    segment_of_page,
    segment_page_range,
)


class TestGeometry:
    def test_flat_size(self):
        assert flat_size((6, 256)) == 1536
        assert flat_size((5,)) == 5
        assert flat_size((2, 3, 4)) == 24

    def test_row_strides(self):
        assert row_strides((6, 256)) == (256, 1)
        assert row_strides((2, 3, 4)) == (12, 4, 1)
        assert row_strides((7,)) == (1,)

    def test_num_pages_exact_and_partial(self):
        assert num_pages(1536, 32) == 48
        assert num_pages(33, 32) == 2
        assert num_pages(32, 32) == 1
        assert num_pages(1, 32) == 1

    def test_offset_row_major(self):
        h = ArrayHeader(1, (6, 256), 32, 4)
        assert h.offset((1, 1)) == 0
        assert h.offset((1, 256)) == 255
        assert h.offset((2, 1)) == 256
        assert h.offset((6, 256)) == 1535

    def test_offset_3d(self):
        h = ArrayHeader(1, (2, 3, 4), 8, 2)
        assert h.offset((1, 1, 1)) == 0
        assert h.offset((2, 3, 4)) == 23
        assert h.offset((1, 2, 3)) == 6

    def test_indices_roundtrip(self):
        h = ArrayHeader(1, (4, 5, 6), 16, 3)
        for off in range(h.total_elements):
            assert h.offset(h.indices_of(off)) == off

    def test_bounds_checked(self):
        h = ArrayHeader(7, (3, 3), 32, 2)
        with pytest.raises(BoundsViolation):
            h.offset((0, 1))
        with pytest.raises(BoundsViolation):
            h.offset((4, 1))
        with pytest.raises(BoundsViolation):
            h.offset((1, 4))
        with pytest.raises(BoundsViolation):
            h.offset((1,))

    def test_rejects_bad_dims(self):
        with pytest.raises(PartitionError):
            ArrayHeader(1, (), 32, 1)
        with pytest.raises(PartitionError):
            ArrayHeader(1, (0, 4), 32, 1)


class TestSegments:
    def test_even_split(self):
        # 48 pages over 4 PEs -> 12 each (the Figure 4 example).
        for pe in range(4):
            lo, hi = segment_page_range(pe, 48, 4)
            assert hi - lo == 12
            assert lo == pe * 12

    def test_uneven_split_first_pes_get_extra(self):
        # 10 pages over 4 PEs -> 3,3,2,2.
        sizes = [segment_page_range(pe, 10, 4) for pe in range(4)]
        assert [hi - lo for lo, hi in sizes] == [3, 3, 2, 2]
        # Contiguous and in order.
        assert sizes[0][0] == 0
        for (lo1, hi1), (lo2, _) in zip(sizes, sizes[1:]):
            assert hi1 == lo2
        assert sizes[-1][1] == 10

    def test_segment_of_page_matches_ranges(self):
        for pages, pes in [(48, 4), (10, 4), (7, 3), (5, 5), (13, 8)]:
            for page in range(pages):
                pe = segment_of_page(page, pages, pes)
                lo, hi = segment_page_range(pe, pages, pes)
                assert lo <= page < hi

    def test_more_pes_than_pages(self):
        # 2 pages, 5 PEs: PEs 0 and 1 get a page each, rest get nothing.
        assert segment_page_range(0, 2, 5) == (0, 1)
        assert segment_page_range(1, 2, 5) == (1, 2)
        assert segment_page_range(2, 2, 5) == (2, 2)
        assert segment_page_range(4, 2, 5) == (2, 2)

    def test_out_of_range_rejected(self):
        with pytest.raises(PartitionError):
            segment_of_page(48, 48, 4)
        with pytest.raises(PartitionError):
            segment_page_range(4, 48, 4)


class TestFigure4:
    """The paper's 6x256-over-4-PEs example, reproduced exactly."""

    @pytest.fixture
    def header(self):
        return ArrayHeader(1, (6, 256), 32, 4)

    def test_48_pages_12_per_pe(self, header):
        assert header.pages == 48
        for pe in range(4):
            lo, hi = header.segment_bounds(pe)
            assert hi - lo == 384  # 12 pages * 32 elements

    def test_page_map_matches_figure_4(self, header):
        # Figure 4 shows, with 8 pages per row (256/32):
        # row 0: all PE1; row 1: 4xPE1 then 4xPE2; row 2: all PE2;
        # row 3: all PE3; row 4: 4xPE3 then 4xPE4; row 5: all PE4.
        expected = "\n".join([
            "1 1 1 1 1 1 1 1",
            "1 1 1 1 2 2 2 2",
            "2 2 2 2 2 2 2 2",
            "3 3 3 3 3 3 3 3",
            "3 3 3 3 4 4 4 4",
            "4 4 4 4 4 4 4 4",
        ])
        assert page_map_diagram(header) == expected

    def test_owner_of_individual_elements(self, header):
        assert header.owner_of((1, 1)) == 0
        assert header.owner_of((2, 128)) == 0
        assert header.owner_of((2, 129)) == 1
        assert header.owner_of((6, 256)) == 3


class TestFigure6:
    """First-element-ownership responsibility (index-space partitioning)."""

    @pytest.fixture
    def header(self):
        return ArrayHeader(1, (6, 256), 32, 4)

    def test_responsible_rows_match_figure_6(self, header):
        # PE1 computes rows 0-1 (1-based: 1-2), PE2 row 2 (3), PE3 rows
        # 3-4 (4-5), PE4 row 5 (6).
        assert header.responsible_rows(0) == (1, 2)
        assert header.responsible_rows(1) == (3, 3)
        assert header.responsible_rows(2) == (4, 5)
        assert header.responsible_rows(3) == (6, 6)

    def test_index_space_diagram_matches_figure_6(self, header):
        expected = "\n".join([
            "1 1 1 1 1 1 1 1",
            "1 1 1 1 1 1 1 1",
            "2 2 2 2 2 2 2 2",
            "3 3 3 3 3 3 3 3",
            "3 3 3 3 3 3 3 3",
            "4 4 4 4 4 4 4 4",
        ])
        assert index_space_diagram(header) == expected

    def test_rows_disjoint_and_cover(self, header):
        seen = {}
        for pe in range(4):
            lo, hi = header.responsible_rows(pe)
            for i in range(lo, hi + 1):
                assert i not in seen, f"row {i} assigned twice"
                seen[i] = pe
        assert sorted(seen) == list(range(1, 7))


class TestRangeFilter:
    def test_ascending_clamp(self):
        h = ArrayHeader(1, (6, 256), 32, 4)
        # PE0 is responsible for rows 1..2.
        assert h.filtered_range(0, 1, 6) == (1, 2)
        assert h.filtered_range(1, 1, 6) == (3, 3)
        # Loop bounds narrower than the responsibility window.
        assert h.filtered_range(0, 2, 6) == (2, 2)
        # Disjoint loop bounds give an empty (immediately false) range.
        first, last = h.filtered_range(0, 4, 6)
        assert first > last

    def test_descending_clamp(self):
        h = ArrayHeader(1, (6, 256), 32, 4)
        # Loop runs 6 downto 1; PE2 responsible for rows 4..5.
        assert h.filtered_range(2, 6, 1, descending=True) == (5, 4)
        first, last = h.filtered_range(0, 6, 4, descending=True)
        # PE0's rows 1..2 don't intersect 4..6: empty for a downto loop.
        assert first < last

    def test_single_pe_gets_everything(self):
        h = ArrayHeader(1, (16, 16), 32, 1)
        assert h.responsible_rows(0) == (1, 16)
        assert h.filtered_range(0, 1, 16) == (1, 16)

    def test_pe_with_no_rows(self):
        # 1 page, 4 PEs: only PE0 has data.
        h = ArrayHeader(1, (4, 4), 32, 4)
        assert h.responsible_rows(0) == (1, 4)
        for pe in (1, 2, 3):
            lo, hi = h.responsible_rows(pe)
            assert lo > hi

    def test_small_rows_many_per_page(self):
        # 8x4 array, page 32 -> 1 page holds all 32 elements on PE0 of 2.
        h = ArrayHeader(1, (8, 4), 32, 2)
        assert h.responsible_rows(0) == (1, 8)
        lo, hi = h.responsible_rows(1)
        assert lo > hi

    def test_row_boundary_not_page_aligned(self):
        # 4x6 = 24 elements, page 4 -> 6 pages, 2 PEs -> 3 pages each
        # (offsets 0..11 and 12..23).  Rows start at 0,6,12,18.
        h = ArrayHeader(1, (4, 6), 4, 2)
        assert h.responsible_rows(0) == (1, 2)
        assert h.responsible_rows(1) == (3, 4)


class TestLocality:
    def test_is_local(self):
        h = ArrayHeader(1, (6, 256), 32, 4)
        assert h.is_local(0, 0)
        assert h.is_local(383, 0)
        assert not h.is_local(384, 0)
        assert h.is_local(384, 1)
        assert h.is_local(1535, 3)

    def test_last_partial_page_clipped(self):
        # 10 elements, page 4 -> 3 pages (4,4,2), 3 PEs -> 1 page each.
        h = ArrayHeader(1, (10,), 4, 3)
        assert h.segment_bounds(0) == (0, 4)
        assert h.segment_bounds(1) == (4, 8)
        assert h.segment_bounds(2) == (8, 10)
