"""Tests for runtime value types, frames/PCBs and token envelopes."""

import pytest

from repro.runtime.frames import BLOCKED, DONE, READY, RUNNING, Frame
from repro.runtime.tokens import (
    BroadcastTokensMsg,
    DirectToken,
    MatchToken,
    PageResponseMsg,
    ReturnAddress,
    TokenBatchMsg,
    TokenCounter,
)
from repro.runtime.values import ArrayId, ArrayValue


class TestArrayId:
    def test_identity_and_repr(self):
        a = ArrayId(3)
        assert a == ArrayId(3)
        assert a != ArrayId(4)
        assert "3" in repr(a)

    def test_not_an_int(self):
        with pytest.raises(TypeError):
            ArrayId(1) + 1  # arithmetic on ids must not silently work

    def test_hashable(self):
        assert len({ArrayId(1), ArrayId(1), ArrayId(2)}) == 2


class TestArrayValue:
    def test_indexing_row_major(self):
        v = ArrayValue((2, 3), [1, 2, 3, 4, 5, 6])
        assert v[1, 1] == 1
        assert v[1, 3] == 3
        assert v[2, 1] == 4
        assert v[2, 3] == 6

    def test_1d_int_index(self):
        v = ArrayValue((3,), [7, 8, 9])
        assert v[2] == 8

    def test_3d(self):
        v = ArrayValue((2, 2, 2), list(range(8)))
        assert v[1, 1, 1] == 0
        assert v[2, 2, 2] == 7
        assert v[2, 1, 2] == 5

    def test_bounds(self):
        v = ArrayValue((2, 2), [0, 0, 0, 0])
        with pytest.raises(IndexError):
            v[0, 1]
        with pytest.raises(IndexError):
            v[3, 1]
        with pytest.raises(IndexError):
            v[1, 1, 1]

    def test_to_nested(self):
        v = ArrayValue((2, 3), [1, 2, 3, 4, 5, 6])
        assert v.to_nested() == [[1, 2, 3], [4, 5, 6]]
        v3 = ArrayValue((2, 1, 2), [1, 2, 3, 4])
        assert v3.to_nested() == [[[1, 2]], [[3, 4]]]

    def test_equality(self):
        assert ArrayValue((2,), [1, 2]) == ArrayValue((2,), [1, 2])
        assert ArrayValue((2,), [1, 2]) != ArrayValue((1, 2), [1, 2])


class TestFrame:
    def make(self, slots=4, inputs=2):
        return Frame(7, 1, ("ctx",), 0, slots, name="t", inputs_expected=inputs)

    def test_slots_absent_until_put(self):
        f = self.make()
        assert not f.present(0)
        f.put(0, 42)
        assert f.present(0)
        assert f.get(0) == 42

    def test_get_absent_raises(self):
        with pytest.raises(LookupError):
            self.make().get(1)

    def test_clear(self):
        f = self.make()
        f.put(2, "x")
        f.clear(2)
        assert not f.present(2)

    def test_put_wakes_only_matching_blocked_slot(self):
        f = self.make()
        f.block_on_slot(3)
        assert f.status == BLOCKED
        assert not f.put(1, "other")
        assert f.put(3, "the one")

    def test_block_on_header(self):
        f = self.make()
        f.block_on_header(9)
        assert f.waiting_header == 9
        f.make_ready()
        assert f.status == READY
        assert f.waiting_header is None

    def test_spawn_seq_monotonic(self):
        f = self.make()
        assert f.next_spawn_seq() == 1
        assert f.next_spawn_seq() == 2

    def test_describe_mentions_state(self):
        f = self.make()
        f.block_on_slot(2)
        assert "blocked" in f.describe()
        assert "slot 2" in f.describe()


class TestMessages:
    def test_token_batch_wire_size(self):
        tokens = tuple(MatchToken(1, ("c",), i, i) for i in range(20))
        msg = TokenBatchMsg(0, 1, tokens)
        assert msg.wire_bytes == 400

    def test_broadcast_wire_size(self):
        msg = BroadcastTokensMsg(0, 1, 0, (DirectToken(1, 0, 5),))
        assert msg.wire_bytes == 20

    def test_page_response_scales_with_cells(self):
        small = PageResponseMsg(0, 1, 1, 0, 0, (1.0,) * 4, 0,
                                ReturnAddress(1, 2, 3))
        large = PageResponseMsg(0, 1, 1, 0, 0, (1.0,) * 32, 0,
                                ReturnAddress(1, 2, 3))
        assert large.wire_bytes > small.wire_bytes
        assert large.wire_bytes == 32 + 8 * 32

    def test_counter_merge(self):
        a = TokenCounter(tokens_sent=3, messages_sent=1)
        b = TokenCounter(tokens_sent=4, remote_reads=2)
        c = a.merge(b)
        assert c.tokens_sent == 7
        assert c.messages_sent == 1
        assert c.remote_reads == 2
