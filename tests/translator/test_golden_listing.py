"""Golden test: the exact SP code generated for the paper's example.

Locks the Translator's output shape — any codegen change shows up here
as a reviewable diff rather than a silent behavioural shift.
"""

from repro.api import compile_source

PAPER = """
function main(n) {
    A = matrix(50, 10);
    for i = 1 to 50 {
        for j = 1 to 10 { A[i, j] = i * 10 + j; }
    }
    return A;
}
"""

GOLDEN = """\
SP 0 main kind=function slots=3 inputs=[0, 1]
     0: ALLOC s2<- 50 10 ; matrix
     1: SPAWN 1 50 s2 block=1D ; LD
     2: SENDR s1 s2
     3: END
     4: SENDR s1 0 ; implicit return 0
     5: END

SP 1 main.for_i kind=loop slots=7 inputs=[0, 1, 2]
     0: RFRANGE s4<- s2 s0 s1 ; range filter
     1: MOV s3<- s4 ; index i
     2: BIN s6<- le s3 s5
     3: BRF s6 @7
     4: SPAWN 1 10 s2 s3 block=2 ; L
     5: BIN s3<- add s3 1
     6: JUMP @2
     7: END

SP 2 main.for_i.for_j kind=loop slots=10 inputs=[0, 1, 2, 3]
     0: MOV s5<- s0
     1: MOV s6<- s1
     2: MOV s4<- s5 ; index j
     3: BIN s7<- le s4 s6
     4: BRF s7 @10
     5: BIN s8<- mul s3 10
     6: BIN s9<- add s8 s4
     7: AWRITE s2 s9 s3 s4
     8: BIN s4<- add s4 1
     9: JUMP @3
    10: END"""


def test_paper_example_listing_is_stable():
    program = compile_source(PAPER)
    assert program.listing() == GOLDEN


def test_listing_structure_markers():
    listing = compile_source(PAPER).listing()
    # The elements the paper names must all be visible in the assembly:
    assert "block=1D" in listing      # the distributing L operator
    assert "range filter" in listing  # the Range Filter prologue
    assert "ALLOC" in listing         # the distributing allocate
    assert listing.count("SP ") == 3  # one SP per code block
