"""Round-trip tests for .pods program serialization."""

import pytest

from repro.api import compile_source
from repro.common.errors import TranslationError
from repro.sim.machine import run_program
from repro.translator.serialize import (
    load_program,
    program_from_dict,
    program_to_dict,
    save_program,
)

SRC = """
function f(x) { return x * x; }
function main(n) {
    A = matrix(n, n);
    for i = 1 to n {
        for j = 1 to n { A[i, j] = f(i) + j; }
    }
    s = 0;
    for i = 1 to n {
        r = 0;
        for j = 1 to n { next r = r + A[i, j]; }
        next s = s + r;
    }
    return s;
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_source(SRC)


class TestRoundTrip:
    def test_dict_round_trip_is_identity(self, program):
        data = program_to_dict(program.pods)
        back = program_from_dict(data)
        assert back.listing() == program.pods.listing()
        assert back.entry_block == program.pods.entry_block
        assert back.arity == program.pods.arity

    def test_file_round_trip_executes_identically(self, program, tmp_path):
        path = tmp_path / "prog.pods"
        save_program(program.pods, str(path))
        loaded = load_program(str(path))
        a = run_program(program.pods, (5,))
        b = run_program(loaded, (5,))
        assert a.value == b.value
        assert a.finish_time_us == b.finish_time_us
        assert a.stats.events_processed == b.stats.events_processed

    def test_json_is_plain_data(self, program, tmp_path):
        import json

        path = tmp_path / "prog.pods"
        save_program(program.pods, str(path))
        data = json.loads(path.read_text())
        assert data["format"] == "pods-program"
        assert data["version"] == 1

    def test_bad_format_rejected(self):
        with pytest.raises(TranslationError):
            program_from_dict({"format": "something-else", "version": 1})
        with pytest.raises(TranslationError):
            program_from_dict({"format": "pods-program", "version": 99})


class TestCli:
    def test_compile_then_run(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "p.idl"
        src.write_text("""
        function main(n) {
            A = array(n);
            for i = 1 to n { A[i] = i * i; }
            s = 0;
            for i = 1 to n { next s = s + A[i]; }
            return s;
        }
        """)
        assert main(["compile", str(src)]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out and ".pods" in out

        pods_file = str(tmp_path / "p.pods")
        assert main(["run", pods_file, "--args", "5", "--pes", "2"]) == 0
        assert "value: 55" in capsys.readouterr().out

    def test_pods_file_rejects_other_backends(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "p.idl"
        src.write_text("function main() { return 1; }")
        main(["compile", str(src)])
        capsys.readouterr()
        assert main(["run", str(tmp_path / "p.pods"),
                     "--backend", "sequential"]) == 1
