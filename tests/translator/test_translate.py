"""Tests of the PODS Translator's lowering (graph -> SP templates)."""

import pytest

from repro.graph import build_graph, validate_graph
from repro.lang.parser import parse
from repro.partitioner import partition
from repro.translator import isa, translate


def translated(src, distribute=True):
    g = build_graph(parse(src))
    if distribute:
        partition(g)
    validate_graph(g)
    return translate(g)


PAPER = """
function main(n) {
    A = matrix(50, 10);
    for i = 1 to 50 {
        for j = 1 to 10 { A[i, j] = i * 10 + j; }
    }
    return A;
}
"""


def template_named(program, suffix):
    return next(t for t in program.templates.values()
                if t.name.endswith(suffix))


class TestTemplates:
    def test_one_template_per_block(self):
        p = translated(PAPER)
        kinds = sorted(t.kind for t in p.templates.values())
        assert kinds == ["function", "loop", "loop"]

    def test_entry_and_arity(self):
        p = translated(PAPER)
        assert p.templates[p.entry_block].name == "main"
        assert p.arity == 1

    def test_every_path_ends_in_end(self):
        p = translated(PAPER)
        for t in p.templates.values():
            assert t.code[-1].op == isa.END

    def test_function_inputs_are_params_plus_return_address(self):
        p = translated(PAPER)
        main = p.templates[p.entry_block]
        assert len(main.inputs) == 2  # n + return address

    def test_loop_inputs_cover_invoke_args(self):
        p = translated(PAPER)
        main = p.templates[p.entry_block]
        spawn = next(i for i in main.code if i.op == isa.SPAWN)
        child = p.templates[spawn.block]
        # args + result raddrs must exactly fill the child's inputs.
        assert len(spawn.args) + len(spawn.result_slots) == len(child.inputs)

    def test_slots_within_frame(self):
        p = translated(PAPER)
        for t in p.templates.values():
            for instr in t.code:
                for op in instr.input_operands():
                    if op[0] == "s":
                        assert 0 <= op[1] < t.num_slots
                for dst in (instr.dst, instr.dst2):
                    if dst is not None:
                        assert 0 <= dst < t.num_slots

    def test_jump_targets_within_code(self):
        p = translated(PAPER)
        for t in p.templates.values():
            for instr in t.code:
                if instr.op in (isa.JUMP, isa.BRF, isa.BRT):
                    assert 0 <= instr.target <= len(t.code)


class TestRangeFilterLowering:
    def test_distributed_loop_starts_with_rfrange(self):
        p = translated(PAPER)
        i_loop = template_named(p, "for_i")
        assert i_loop.code[0].op == isa.RFRANGE
        assert not i_loop.code[0].descending

    def test_local_loop_uses_plain_bounds(self):
        p = translated(PAPER)
        j_loop = template_named(p, "for_j")
        assert j_loop.code[0].op == isa.MOV
        assert all(i.op != isa.RFRANGE for i in j_loop.code)

    def test_undistributed_compile_has_no_rfrange(self):
        p = translated(PAPER, distribute=False)
        for t in p.templates.values():
            assert all(i.op != isa.RFRANGE for i in t.code)

    def test_descending_flag_propagates(self):
        p = translated("""
        function main(n) {
            A = array(n);
            for i = n downto 1 { A[i] = i; }
            return A;
        }
        """)
        loop = template_named(p, "for_i")
        rf = loop.code[0]
        assert rf.op == isa.RFRANGE and rf.descending
        # Descending skeleton: test is >=, step is sub.
        assert any(i.op == isa.BIN and i.fn == "ge" for i in loop.code)
        assert any(i.op == isa.BIN and i.fn == "sub" for i in loop.code)


class TestCarriedVariables:
    SUM = """
    function main(n) {
        s = 0;
        for i = 1 to n { next s = s + i; }
        return s;
    }
    """

    def test_loop_epilogue_sends_results(self):
        p = translated(self.SUM)
        loop = template_named(p, "for_i")
        sendrs = [i for i in loop.code if i.op == isa.SENDR]
        assert len(sendrs) == 1
        # The SENDR immediately precedes END.
        assert loop.code[-1].op == isa.END
        assert loop.code[-2].op == isa.SENDR

    def test_spawn_declares_result_slots(self):
        p = translated(self.SUM)
        main = p.templates[p.entry_block]
        spawn = next(i for i in main.code if i.op == isa.SPAWN)
        assert len(spawn.result_slots) == 1

    def test_shadow_copy_protocol(self):
        # carried -> shadow at loop top, shadow -> carried at bottom:
        # two MOVs per carried var per iteration beyond the next-write.
        p = translated(self.SUM)
        loop = template_named(p, "for_i")
        carries = [i for i in loop.code
                   if i.op == isa.MOV and "carry" in i.comment]
        assert len(carries) == 1


class TestCallsAndConditionals:
    def test_call_spawns_function_block(self):
        p = translated("""
        function f(x) { return x + 1; }
        function main() { return f(41); }
        """)
        main = p.templates[p.entry_block]
        spawn = next(i for i in main.code if i.op == isa.SPAWN)
        callee = p.templates[spawn.block]
        assert callee.name == "f"
        assert spawn.result_slots, "call must receive a result"

    def test_if_lowering_has_branch_and_join(self):
        p = translated("function main(a, b) { return if a < b then a else b; }")
        main = p.templates[p.entry_block]
        assert any(i.op == isa.BRF for i in main.code)
        assert any(i.op == isa.JUMP for i in main.code)
        joins = [i for i in main.code if i.comment == "join"]
        assert len(joins) == 2  # one per branch

    def test_return_in_branch_emits_sendr_end_inline(self):
        p = translated("""
        function main(a) {
            if a > 0 { return 1; } else { return 2; }
        }
        """)
        main = p.templates[p.entry_block]
        ends = [i for i in main.code if i.op == isa.END]
        sendrs = [i for i in main.code if i.op == isa.SENDR]
        assert len(ends) >= 3  # both branches + implicit epilogue
        assert len(sendrs) >= 3


class TestOrderingInvariant:
    """The Section 3 invariant: no instruction consumes a slot that is
    only produced later on the same straight-line path."""

    PROGRAMS = [PAPER, TestCarriedVariables.SUM, """
    function main(n) {
        A = array(n);
        B = array(n);
        for i = 1 to n { A[i] = i; }
        for i = 1 to n { B[i] = A[i] * 2; }
        s = 0;
        for i = 1 to n { next s = s + B[i]; }
        return s;
    }
    """]

    @pytest.mark.parametrize("src", PROGRAMS)
    def test_no_use_before_straight_line_def(self, src):
        p = translated(src)
        for t in p.templates.values():
            defined = set(t.inputs)
            jump_targets = {i.target for i in t.code
                            if i.op in (isa.JUMP, isa.BRF, isa.BRT)}
            back_edge_region = False
            for pc, instr in enumerate(t.code):
                if pc in jump_targets:
                    # Conservative: past a join point, earlier-path defs
                    # may come from either side; stop checking strictly.
                    back_edge_region = True
                if not back_edge_region:
                    for op in instr.input_operands():
                        if op[0] == "s":
                            assert op[1] in defined, (
                                f"{t.name} pc={pc}: slot {op[1]} read "
                                "before any definition")
                for dst in (instr.dst, instr.dst2):
                    if dst is not None:
                        defined.add(dst)
                if instr.op == isa.SPAWN:
                    defined.update(instr.result_slots)
