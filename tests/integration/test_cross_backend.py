"""Integration matrix: every backend must agree on a battery of programs
that jointly cover the language and distribution machinery.

Backends: sequential interpreter, PODS simulator (1 and 4 PEs), static
P&R model.  The multiprocessing backend is spot-checked on a subset
(process startup makes a full matrix slow)."""

import pytest

from repro.api import compile_source

# (name, source, args, expected-or-None)  — None means "trust the
# sequential interpreter as the oracle".
PROGRAMS = [
    ("scalar-arith",
     "function main(a, b) { return (a + b) * (a - b) % 7 + a / b; }",
     (9, 4), None),
    ("fill-and-sum", """
     function main(n) {
         A = matrix(n, n);
         for i = 1 to n { for j = 1 to n { A[i, j] = i * j; } }
         s = 0;
         for i = 1 to n {
             r = 0;
             for j = 1 to n { next r = r + A[i, j]; }
             next s = s + r;
         }
         return s;
     }""", (7,), 784),
    ("row-sweep", """
     function main(n) {
         B = matrix(n, n);
         for j = 1 to n { B[1, j] = 1.0 * j; }
         for i = 2 to n {
             for j = 1 to n { B[i, j] = B[i - 1, j] * 0.5 + 1.0; }
         }
         s = 0.0;
         for j = 1 to n { next s = s + B[n, j]; }
         return s;
     }""", (8,), None),
    ("descending-chain", """
     function main(n) {
         A = array(n);
         A[n] = 1.0;
         for i = n - 1 downto 1 { A[i] = A[i + 1] * 0.9 + 0.1; }
         return A[1];
     }""", (12,), None),
    ("function-calls", """
     function sq(x) { return x * x; }
     function hyp(a, b) { return sqrt(sq(a) + sq(b)); }
     function main() { return hyp(3.0, 4.0); }
     """, (), 5.0),
    ("recursion", """
     function ack_ish(m, n) {
         return if m == 0 then n + 1
                else if n == 0 then ack_ish(m - 1, 1)
                else ack_ish(m - 1, ack_ish(m, n - 1));
     }
     function main() { return ack_ish(2, 3); }
     """, (), 9),
    ("while-and-conditionals", """
     function main(n) {
         s = n;
         count = 0;
         while s != 1 {
             next s = if s % 2 == 0 then s / 2 else 3 * s + 1;
             next count = count + 1;
         }
         return count;
     }""", (27.0,), None),
    ("three-dimensional", """
     function main(n) {
         A = array(n, n, n);
         for i = 1 to n {
             for j = 1 to n {
                 for k = 1 to n { A[i, j, k] = i * 100 + j * 10 + k; }
             }
         }
         return A[n, 1, n];
     }""", (4,), 414),
    ("boundary-guard", """
     function main(n) {
         A = array(n);
         for i = 1 to n {
             A[i] = if i == 1 then 0.0 else 1.0 * i;
         }
         B = array(n);
         for i = 1 to n {
             B[i] = if i == 1 then A[1] else A[i] + A[i - 1];
         }
         return B[n];
     }""", (9,), None),
]


@pytest.fixture(scope="module")
def compiled():
    return {name: (compile_source(src), args, expected)
            for name, src, args, expected in PROGRAMS}


@pytest.mark.parametrize("name", [p[0] for p in PROGRAMS])
def test_backend_agreement(name, compiled):
    program, args, expected = compiled[name]
    oracle = program.run_sequential(args).value
    if expected is not None:
        assert oracle == pytest.approx(expected)

    pods1 = program.run_pods(args, num_pes=1).value
    pods4 = program.run_pods(args, num_pes=4).value
    static = program.run_static(args, num_pes=4).value
    assert pods1 == pytest.approx(oracle, rel=1e-12)
    assert pods4 == pytest.approx(oracle, rel=1e-12)
    assert static == pytest.approx(oracle, rel=1e-12)


@pytest.mark.parametrize("name", ["fill-and-sum", "row-sweep"])
def test_parallel_backend_agreement(name, compiled):
    program, args, expected = compiled[name]
    oracle = program.run_sequential(args).value
    par = program.run_parallel(args, workers=2).value
    assert par == pytest.approx(oracle, rel=1e-12)


def test_cross_backend_metric_differential(compiled):
    """Both backends feed one MetricsRegistry; the execution-model-
    independent families must agree.

    Semantic metrics (what the program *does*): RF subrange extents,
    total items, element writes, array pages touched.  Timing-dependent
    metrics (deferred reads) are only sanity-bounded — how often a read
    arrives before its write depends on the schedule.
    """
    program, args, expected = compiled["fill-and-sum"]

    from repro.common.config import MachineConfig, ObsConfig, SimConfig

    sim_cfg = SimConfig(machine=MachineConfig(num_pes=2),
                        obs=ObsConfig(metrics=True, timelines=True))
    sim = program.run_pods(args, num_pes=2, config=sim_cfg)
    par = program.run_parallel(args, workers=2)
    assert sim.value == par.value == expected

    sim_reg, par_reg = sim.stats.registry, par.registry
    assert sim_reg is not None and par_reg is not None

    def rf_rows(reg):
        return sorted((r.labels_dict()["pe"], r.labels_dict()["first"],
                       r.labels_dict()["last"]) for r in
                      reg.select("rf.subrange"))

    # Same RF split: each PE/worker owns the same index subrange.
    assert rf_rows(sim_reg) == rf_rows(par_reg)
    assert sim_reg.total("rf.items") == par_reg.total("rf.items") == args[0]

    # Same store traffic: every element written exactly once.
    assert (sim_reg.total("array.element_writes")
            == par_reg.total("array.element_writes")
            == args[0] * args[0])

    # Same pages of the shared array populated.
    def pages(reg):
        return [r.value for r in reg.select("array.pages_touched")]

    assert pages(sim_reg) == pages(par_reg)

    # Deferred reads are schedule-dependent; both backends must report a
    # well-formed (non-negative) count.
    assert sim_reg.total("array.deferred_reads") >= 0
    assert par_reg.total("array.deferred_reads") >= 0


def test_cross_backend_wait_attribution(compiled):
    """The simulator's I-structure wait time and the parallel backend's
    deferred-read spin time land in the *same* metric family: ``wait.us``
    rows labelled (pe, cause).

    The magnitudes are not comparable (modeled microseconds of a
    split-phase machine vs host spin-wait of a multiprocessing run), so
    the differential is structural: same family name, same label keys,
    same cause vocabulary, and both backends must actually attribute
    their dependency waits to ``istructure-defer``.

    row-sweep is the program where the dependency bites: row i's readers
    race row i-1's writers, so some reads arrive before their element is
    written on both backends.
    """
    program, args, _ = compiled["row-sweep"]

    from repro.common.config import MachineConfig, ObsConfig, SimConfig
    from repro.obs.waits import IDLE, WAIT_CATEGORIES

    sim_cfg = SimConfig(machine=MachineConfig(num_pes=2),
                        obs=ObsConfig(metrics=True, timelines=True,
                                      waits=True))
    sim = program.run_pods(args, num_pes=2, config=sim_cfg)
    par = program.run_parallel(args, workers=2)
    oracle = program.run_sequential(args).value
    assert sim.value == pytest.approx(oracle, rel=1e-12)
    assert par.value == pytest.approx(oracle, rel=1e-12)

    sim_rows = sim.stats.registry.select("wait.us")
    par_rows = par.registry.select("wait.us")
    assert sim_rows and par_rows

    allowed = set(WAIT_CATEGORIES) | {IDLE}
    for row in sim_rows + par_rows:
        labels = row.labels_dict()
        assert set(labels) == {"pe", "cause"}
        assert labels["cause"] in allowed
        assert row.value >= 0.0

    def defer_us(rows):
        return sum(r.value for r in rows
                   if r.labels_dict()["cause"] == "istructure-defer")

    # fill-and-sum's reader loop races its writer loop: the simulator
    # must attribute some wait time to the dataflow dependency, and the
    # parallel backend reports its (possibly zero) spin time in the same
    # bucket rather than a backend-private counter.
    assert defer_us(sim_rows) > 0.0
    assert defer_us(par_rows) >= 0.0
    # The deferred-read *counts* are the semantic cousins; both present.
    assert sim.stats.registry.total("array.deferred_reads") >= 0
    assert par.registry.total("array.deferred_reads") >= 0


def test_undistributed_compile_agrees(compiled):
    # distribute=False (the partition_none ablation) must not change
    # results, only parallelism.
    _, args, _ = compiled["fill-and-sum"]
    src = PROGRAMS[1][1]
    dist = compile_source(src)
    plain = compile_source(src, distribute=False)
    assert (dist.run_pods(args, num_pes=4).value
            == plain.run_pods(args, num_pes=4).value
            == dist.run_sequential(args).value)
