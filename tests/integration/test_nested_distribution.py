"""Integration tests for distribution in unusual nesting positions."""

import pytest

from repro.api import compile_source
from repro.common.config import MachineConfig, SimConfig


class TestDistributedLoopInsideCalledFunction:
    def test_function_with_ld_called_per_timestep(self):
        # relax() contains the distributed loop; it is called repeatedly
        # from a sequential time loop (the stencil pattern).
        src = """
        function fill_row(T, m, v) {
            for j = 1 to m { T[j] = v + 1.0 * j; }
            return 0;
        }
        function main(m, steps) {
            s = 0.0;
            for t = 1 to steps {
                T = array(m);
                d = fill_row(T, m, 1.0 * t);
                next s = s + T[m];
            }
            return s;
        }
        """
        program = compile_source(src)
        expect = sum(t + m for t, m in [(t, 8) for t in range(1, 4)])
        assert program.run_pods((8, 3), num_pes=4).value == \
            pytest.approx(float(expect))

    def test_ld_spawned_from_inside_distributed_iteration(self):
        # Each iteration of the distributed i-loop calls a function whose
        # own loop is distributed and writes a per-iteration array.  The
        # nested LD replicates per call; ownership math keeps writes
        # disjoint, so results stay exact.
        src = """
        function fill_row(T, m, v) {
            for j = 1 to m { T[j] = v * 10.0 + 1.0 * j; }
            return 0;
        }
        function main(n, m) {
            A = matrix(n, m);
            for i = 1 to n {
                T = array(m);
                d = fill_row(T, m, 1.0 * i);
                for j = 1 to m { A[i, j] = T[j]; }
            }
            return A;
        }
        """
        program = compile_source(src)
        v = program.run_pods((4, 6), num_pes=3).value
        for i in range(1, 5):
            for j in range(1, 7):
                assert v[i, j] == pytest.approx(i * 10.0 + j)


class TestHopsConfig:
    def test_more_hops_cost_more(self):
        src = """
        function main(n) {
            A = array(n);
            for i = 1 to n { A[i] = i; }
            s = 0;
            for i = 1 to n { next s = s + A[i]; }
            return s;
        }
        """
        program = compile_source(src)
        near = SimConfig(machine=MachineConfig(num_pes=4, avg_hops=1.0))
        far = SimConfig(machine=MachineConfig(num_pes=4, avg_hops=50.0))
        t_near = program.run_pods((64,), num_pes=4, config=near)
        t_far = program.run_pods((64,), num_pes=4, config=far)
        assert t_near.value == t_far.value
        assert t_far.finish_time_us > t_near.finish_time_us


class TestDeepNesting:
    def test_four_level_nest(self):
        src = """
        function main(n) {
            A = array(n, n, n);
            for i = 1 to n {
                for j = 1 to n {
                    for k = 1 to n {
                        A[i, j, k] = i * 100 + j * 10 + k;
                    }
                }
            }
            total = 0;
            for i = 1 to n {
                plane = 0;
                for j = 1 to n {
                    row = 0;
                    for k = 1 to n { next row = row + A[i, j, k]; }
                    next plane = plane + row;
                }
                next total = total + plane;
            }
            return total;
        }
        """
        program = compile_source(src)
        n = 3
        expect = sum(i * 100 + j * 10 + k
                     for i in range(1, n + 1)
                     for j in range(1, n + 1)
                     for k in range(1, n + 1))
        for pes in (1, 4):
            assert program.run_pods((n,), num_pes=pes).value == expect
