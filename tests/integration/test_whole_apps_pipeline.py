"""Pipeline-wide integration: every shipped app must survive the full
tool chain — optimizer, serialization, graph validation, rendering —
with unchanged results."""

import pytest

from repro.api import compile_source
from repro.apps.livermore import KERNELS
from repro.apps.matmul import MATMUL_CHECKSUM_SOURCE
from repro.apps.nbody import NBODY_SOURCE
from repro.apps.simple_app import simple_source
from repro.apps.stencil import STENCIL_SOURCE

APPS = {
    "matmul": (MATMUL_CHECKSUM_SOURCE, (6,)),
    "stencil": (STENCIL_SOURCE, (8, 2)),
    "simple": (simple_source(), (8, 1)),
    "nbody": (NBODY_SOURCE, (8, 1)),
    "livermore-hydro": (KERNELS["hydro"], (16,)),
    "livermore-tridiag": (KERNELS["tridiag"], (16,)),
}


@pytest.mark.parametrize("name", sorted(APPS))
def test_optimizer_is_transparent(name):
    src, args = APPS[name]
    plain = compile_source(src)
    opt = compile_source(src, optimize=True)
    a = plain.run_pods(args, num_pes=2)
    b = opt.run_pods(args, num_pes=2)
    assert b.value == pytest.approx(a.value, rel=1e-12)
    assert b.stats.instructions <= a.stats.instructions


@pytest.mark.parametrize("name", sorted(APPS))
def test_serialization_round_trip(name, tmp_path):
    from repro.sim.machine import run_program
    from repro.translator.serialize import load_program, save_program

    src, args = APPS[name]
    program = compile_source(src)
    path = tmp_path / f"{name}.pods"
    save_program(program.pods, str(path))
    loaded = load_program(str(path))
    a = run_program(program.pods, args)
    b = run_program(loaded, args)
    assert a.value == b.value
    assert a.finish_time_us == b.finish_time_us


@pytest.mark.parametrize("name", sorted(APPS))
def test_renderers_handle_every_app(name):
    from repro.graph.render import to_dot, to_text

    src, _ = APPS[name]
    program = compile_source(src)
    dot = to_dot(program.graph)
    text = to_text(program.graph)
    assert dot.count("{") == dot.count("}")
    assert "function main" in text


@pytest.mark.parametrize("name", sorted(APPS))
def test_trace_mode_does_not_change_results(name):
    from repro.common.config import MachineConfig, SimConfig
    from repro.sim.machine import Machine

    src, args = APPS[name]
    program = compile_source(src)
    plain = program.run_pods(args, num_pes=2)
    m = Machine(program.pods,
                SimConfig(machine=MachineConfig(num_pes=2), trace=True))
    traced = m.run(args)
    assert traced.value == pytest.approx(plain.value, rel=1e-12)
    assert traced.finish_time_us == plain.finish_time_us
