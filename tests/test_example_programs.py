"""The .idl programs shipped under examples/programs/ must compile and
run on every backend through the CLI."""

import glob
import os

import pytest

from repro.cli import main

PROGRAMS = sorted(glob.glob(
    os.path.join(os.path.dirname(__file__), "..", "examples", "programs",
                 "*.idl")))


def needs_args(path):
    return "main(n)" in open(path).read()


@pytest.mark.parametrize("path", PROGRAMS, ids=os.path.basename)
def test_program_runs_on_cli(path, capsys):
    args = ["run", path, "--pes", "2"]
    if needs_args(path):
        args += ["--args", "8"]
    assert main(args) == 0
    assert "value:" in capsys.readouterr().out


@pytest.mark.parametrize("path", PROGRAMS, ids=os.path.basename)
def test_program_partition_and_listing(path, capsys):
    assert main(["partition", path]) == 0
    assert main(["listing", path]) == 0
    out = capsys.readouterr().out
    assert "SP 0" in out


def test_programs_exist():
    assert len(PROGRAMS) >= 3
