"""End-to-end smoke for the ``dist`` backend: healthy runs, telemetry
surface, takeover healing and the structured node-loss abort.

The conformance suite covers value/metric/taxonomy parity across the
whole app catalog; these tests pin the backend-specific surfaces —
the :class:`DistResult` fields, the recovery ladder and the render
hooks — on one small program so they stay fast.
"""

import pytest

from repro.api import compile_source
from repro.backend import classify_error, get_backend, render_error
from repro.common.config import DistConfig
from repro.common.errors import NodeLossError

# B's loop reads A mirrored (A[n+1-i]), so at 2+ nodes roughly half
# the reads are remote split-phase exchanges.  Every element of both
# arrays is written by exactly one distributed iteration — SPMD
# replication of serial code means a bare write outside a distributed
# loop would (correctly) trip single assignment on every node.
SOURCE = """
function main(n) {
    A = array(n);
    for i = 1 to n { A[i] = i * 1.0; }
    B = array(n);
    for i = 1 to n { B[i] = A[n + 1 - i] + A[i]; }
    s = 0.0;
    for i = 1 to n { next s = s + B[i]; }
    return s;
}
"""

# Tight supervision windows so failure scenarios resolve quickly.
FAST = dict(heartbeat_interval_s=0.04, heartbeat_timeout_s=0.6,
            poll_interval_s=0.02, retry_backoff_s=0.01,
            retry_backoff_max_s=0.05)


@pytest.fixture(scope="module")
def program():
    return compile_source(SOURCE)


@pytest.fixture(scope="module")
def oracle(program):
    return get_backend("seq").run(program, (12,)).value


class TestHealthyRuns:
    def test_value_and_result_surface(self, program, oracle):
        r = get_backend("dist").run(program, (12,), parallelism=2)
        assert r.value == pytest.approx(oracle, rel=1e-12)
        assert r.backend == "dist"
        assert r.parallelism == 2
        assert r.wall_time_s is not None and r.wall_time_s > 0
        assert r.registry is not None

    def test_dist_result_fields(self, program):
        r = get_backend("dist").run(program, (12,), parallelism=2)
        raw = r.raw
        assert raw.nodes == 2
        assert len(raw.worker_stats) == 2
        assert sum(t.shared_writes for t in raw.worker_stats) > 0
        assert raw.recovery is not None and not raw.recovery.events
        assert raw.netstats is not None and raw.netstats.sent > 0
        assert "node" in raw.telemetry_table()

    def test_registry_has_distributed_families(self, program):
        r = get_backend("dist").run(program, (12,), parallelism=2)
        reg = r.registry
        assert reg.total("array.element_writes") > 0
        assert reg.total("rf.items") > 0
        assert any(row.labels_dict().get("cause") == "remote-read"
                   for row in reg.select("wait.us"))

    def test_array_result_gathers_segments(self, oracle):
        src = """
        function main(n) {
            A = array(n);
            for i = 1 to n { A[i] = i * 2.0; }
            return A;
        }
        """
        r = get_backend("dist").run(compile_source(src), (8,),
                                    parallelism=2)
        assert list(r.value.flat) == [2.0 * i for i in range(1, 9)]


class TestRecovery:
    def test_node_kill_heals_by_takeover(self, program, oracle):
        cfg = DistConfig(nodes=3, **FAST)
        r = get_backend("dist").run(program, (12,), config=cfg,
                                    faults="node-kill:node=1,on=iter,"
                                           "after=2")
        assert r.value == pytest.approx(oracle, rel=1e-12)
        assert r.raw.recovery.takeovers == 1
        kinds = [e.kind for e in r.raw.recovery.events]
        assert "failure" in kinds and "takeover" in kinds

    def test_budget_exhaustion_raises_node_loss(self, program):
        cfg = DistConfig(nodes=2, max_takeovers=0, **FAST)
        with pytest.raises(NodeLossError) as excinfo:
            get_backend("dist").run(program, (12,), config=cfg,
                                    faults="node-kill:node=1,on=iter,"
                                           "after=2")
        exc = excinfo.value
        assert classify_error(exc) == "node-loss"
        rendered = render_error(exc)
        assert "\n" not in rendered
        assert rendered.startswith("error[NodeLossError/node-loss]: ")
        assert any(f.worker == 1 for f in exc.failures)

    def test_recovery_disabled_fails_fast(self, program):
        cfg = DistConfig(nodes=2, recovery=False, **FAST)
        with pytest.raises(NodeLossError, match="recovery is disabled"):
            get_backend("dist").run(program, (12,), config=cfg,
                                    faults="node-kill:node=1,on=iter,"
                                           "after=2")
