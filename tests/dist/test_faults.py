"""The ``PODS_DIST_FAULTS`` dialect: parsing and the runtime injector."""

import pytest

from repro.dist.faults import (ANY, DEFAULT_KILL_EXITCODE, DistFault,
                               DistFaultInjector, DistFaultPlan)
from repro.dist.transport import COORD


class TestParse:
    def test_drop_clause(self):
        plan = DistFaultPlan.parse("drop:kind=data,count=4")
        (f,) = plan.faults
        assert f.action == "drop" and f.kind == "data" and f.count == 4
        assert f.src == ANY and f.dst == ANY

    def test_delay_defaults_half_second(self):
        (f,) = DistFaultPlan.parse("delay:kind=hb").faults
        assert f.seconds == 0.5

    def test_partition_clause(self):
        (f,) = DistFaultPlan.parse("partition:a=0,b=2,at=0.1,dur=0.4").faults
        assert (f.a, f.b, f.at, f.dur) == (0, 2, 0.1, 0.4)

    def test_node_kill_defaults(self):
        (f,) = DistFaultPlan.parse("node-kill:node=1").faults
        assert f.on == "iter" and f.gen == 1
        assert f.exitcode == DEFAULT_KILL_EXITCODE

    def test_splits_frame_and_kill_clauses(self):
        plan = DistFaultPlan.parse(
            "drop:kind=ack;node-kill:node=0,on=result")
        assert [f.action for f in plan.frame_faults()] == ["drop"]
        assert [f.action for f in plan.kill_faults()] == ["node-kill"]

    @pytest.mark.parametrize("spec,match", [
        ("explode:node=1", "explode"),
        ("drop:kind=bogus", "bogus"),
        ("drop:after=-1", "after"),
        ("delay:seconds=-2", "seconds"),
        ("partition:a=1,b=1", "distinct"),
        ("partition:a=0", "distinct"),
        ("node-kill:node=-1", "node"),
        ("node-kill:node=1,on=bogus", "bogus"),
        ("node-kill:bogus=1", "bogus"),
    ])
    def test_bad_clause_names_the_problem(self, spec, match):
        with pytest.raises(ValueError, match=match):
            DistFaultPlan.parse(spec)

    def test_empty_is_falsy(self):
        assert not DistFaultPlan.parse(None)
        assert not DistFaultPlan.parse("  ")
        assert DistFaultPlan.parse("drop:count=1")


class TestFrameDecisions:
    def test_after_and_count_window(self):
        plan = DistFaultPlan.parse("drop:kind=data,after=2,count=2")
        inj = DistFaultInjector(plan, node=0)
        decisions = [inj.decide_frame(1, "data")[0] for _ in range(6)]
        # skip 2, fire 2, then disarmed
        assert decisions == [False, False, True, True, False, False]

    def test_kind_filter(self):
        plan = DistFaultPlan.parse("drop:kind=ack,count=0")
        inj = DistFaultInjector(plan, node=0)
        assert inj.decide_frame(1, "ack")[0]
        assert not inj.decide_frame(1, "data")[0]

    def test_src_filter_is_the_injectors_node(self):
        plan = DistFaultPlan.parse("drop:src=2,count=0")
        assert DistFaultInjector(plan, node=2).decide_frame(0, "data")[0]
        assert not DistFaultInjector(plan, node=1).decide_frame(
            0, "data")[0]

    def test_dst_filter_coordinator(self):
        plan = DistFaultPlan.parse(f"drop:dst={COORD},kind=hb,count=0")
        inj = DistFaultInjector(plan, node=1)
        assert inj.decide_frame(COORD, "hb")[0]
        assert not inj.decide_frame(0, "hb")[0]

    def test_delays_accumulate(self):
        plan = DistFaultPlan.parse(
            "delay:seconds=0.2,count=0;delay:seconds=0.3,count=0")
        inj = DistFaultInjector(plan, node=0)
        drop, delay_s = inj.decide_frame(1, "data")
        assert not drop
        assert delay_s == pytest.approx(0.5)

    def test_partition_matches_both_directions(self):
        plan = DistFaultPlan.parse("partition:a=0,b=1,dur=0")
        assert DistFaultInjector(plan, node=0).decide_frame(1, "data")[0]
        assert DistFaultInjector(plan, node=1).decide_frame(0, "data")[0]
        assert not DistFaultInjector(plan, node=2).decide_frame(
            0, "data")[0]
        assert not DistFaultInjector(plan, node=0).decide_frame(
            2, "data")[0]

    def test_partition_window_not_yet_open(self):
        # Window opens far in the future: frames pass now.
        plan = DistFaultPlan.parse("partition:a=0,b=1,at=3600,dur=1")
        inj = DistFaultInjector(plan, node=0)
        assert not inj.decide_frame(1, "data")[0]


class TestGenerations:
    def test_kills_armed_per_generation(self):
        plan = DistFaultPlan.parse("node-kill:node=1,on=iter,gen=2")
        inj = DistFaultInjector(plan, node=1, generation=1)
        assert inj._kills == []
        inj.set_generation(2)
        assert len(inj._kills) == 1

    def test_gen_zero_arms_every_generation(self):
        plan = DistFaultPlan.parse("node-kill:node=1,on=iter,gen=0")
        inj = DistFaultInjector(plan, node=1, generation=1)
        assert len(inj._kills) == 1
        inj.set_generation(3)
        assert len(inj._kills) == 1

    def test_counters_reset_on_adoption(self):
        plan = DistFaultPlan.parse("node-kill:node=1,on=write,after=5")
        inj = DistFaultInjector(plan, node=1)
        inj._counts["write"] = 4
        inj.set_generation(1)
        assert inj._counts["write"] == 0

    def test_other_nodes_never_armed(self):
        plan = DistFaultPlan.parse("node-kill:node=1,on=iter,gen=0")
        inj = DistFaultInjector(plan, node=0)
        assert inj._kills == []
        inj.fire("iter")  # must be a no-op, not an os._exit
