"""Taxonomy totality for the peer-loss reason constants.

The recovery log, ``peer-lost`` frames and structured aborts all carry
:mod:`repro.dist.reasons` strings; these tests pin the invariants the
producers rely on — the kind mapping is total, round-trips survive
detail suffixes, and no producer in the dist package still formats a
free-form reason of its own.
"""

import re

import pytest

from repro.dist import reasons


class TestTaxonomyTotality:
    def test_failure_kind_covers_every_reason(self):
        assert set(reasons.FAILURE_KIND) == set(reasons.ALL_REASONS)

    def test_kinds_are_the_two_valued_taxonomy(self):
        assert set(reasons.FAILURE_KIND.values()) <= {"lost", "crash"}

    def test_all_reasons_has_no_duplicates(self):
        assert len(set(reasons.ALL_REASONS)) == len(reasons.ALL_REASONS)

    def test_reason_constants_are_slugs(self):
        # The constants travel in control frames and log lines; keep
        # them colon-free so "<reason>: <detail>" stays parseable.
        for r in reasons.ALL_REASONS:
            assert re.fullmatch(r"[a-z][a-z-]*", r), r


class TestRoundTrip:
    @pytest.mark.parametrize("reason", reasons.ALL_REASONS)
    def test_bare_reason_round_trips(self, reason):
        assert reasons.parse_reason(reasons.reason_string(reason)) \
            == reason

    @pytest.mark.parametrize("reason", reasons.ALL_REASONS)
    def test_detail_suffix_round_trips(self, reason):
        text = reasons.reason_string(reason, "node 3, budget 8: spent")
        assert reasons.parse_reason(text) == reason

    def test_unknown_reason_rejected_at_the_producer(self):
        with pytest.raises(ValueError):
            reasons.reason_string("fell-over")

    def test_unknown_text_parses_to_connection_closed(self):
        # The consumer side is lenient: a frame from a newer/older peer
        # degrades to the most generic reason instead of crashing.
        assert reasons.parse_reason("gibberish: x") \
            == reasons.CONNECTION_CLOSED


class TestFailureKind:
    def test_process_exit_refined_by_exitcode(self):
        assert reasons.failure_kind(reasons.PROCESS_EXIT, 1) == "crash"
        assert reasons.failure_kind(reasons.PROCESS_EXIT, -9) == "crash"
        assert reasons.failure_kind(reasons.PROCESS_EXIT, 0) == "lost"
        assert reasons.failure_kind(reasons.PROCESS_EXIT, None) == "lost"

    @pytest.mark.parametrize("reason", [r for r in reasons.ALL_REASONS
                                        if r != reasons.PROCESS_EXIT])
    def test_exitcode_ignored_elsewhere(self, reason):
        assert reasons.failure_kind(reason, 1) \
            == reasons.FAILURE_KIND[reason]


def test_no_freeform_reason_strings_left_in_producers():
    # The pre-taxonomy producers formatted these loss reasons inline
    # ("retransmit budget exhausted to node 3" etc.); grep-gate the
    # package so a revert cannot silently fork the taxonomy.  (Abort
    # *messages* like "takeover budget exhausted" are out of scope —
    # they ride structured exceptions, not peer-lost frames.)
    import os

    import repro.dist as pkg

    freeform = re.compile(r"re(?:transmit|connect) budget exhausted")
    root = os.path.dirname(pkg.__file__)
    offenders = []
    for fname in os.listdir(root):
        if not fname.endswith(".py") or fname == "reasons.py":
            continue
        with open(os.path.join(root, fname)) as fh:
            src = fh.read()
        if freeform.search(src):
            offenders.append(fname)
    assert not offenders, (
        f"free-form loss reasons in {offenders}; use repro.dist.reasons")
