"""Framing and reliable delivery on the real-socket transport.

The endpoint pair runs on a private asyncio loop per test; fault
injection happens through the same :class:`DistFaultInjector` the
backend uses, so a dropped frame heals by a *real* retransmission over
a real socket.
"""

import asyncio

import pytest

from repro.common.config import DistConfig
from repro.common.retry import RetryPolicy
from repro.dist import reasons
from repro.dist.faults import DistFaultInjector, DistFaultPlan
from repro.dist.transport import Endpoint, encode_frame, read_frame


class TestFraming:
    def _roundtrip(self, obj):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame(obj))
            reader.feed_eof()
            return await read_frame(reader)

        return asyncio.run(go())

    def test_roundtrip(self):
        obj = {"t": "data", "src": 3, "seq": 7,
               "m": {"vals": {"0": 1.5}}}
        assert self._roundtrip(obj) == obj

    def test_eof_at_boundary_returns_none(self):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_eof()
            return await read_frame(reader)

        assert asyncio.run(go()) is None

    def test_truncated_frame_returns_none(self):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"x": 1})[:-2])
            reader.feed_eof()
            return await read_frame(reader)

        assert asyncio.run(go()) is None

    def test_oversized_frame_rejected(self):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\x7f\xff\xff\xff")
            with pytest.raises(ValueError, match="exceeds"):
                await read_frame(reader)

        asyncio.run(go())


def _endpoint_pair(cfg, faults_a="", faults_b=""):
    """Build two wired endpoints, each with its own fault plan."""
    policy = RetryPolicy.from_config(cfg)
    inbox = {0: [], 1: []}
    lost = []

    def make(node, spec):
        inj = DistFaultInjector(DistFaultPlan.parse(spec), node)
        return Endpoint(node, cfg, policy, inj,
                        on_message=lambda src, m, n=node:
                            inbox[n].append((src, m)),
                        on_peer_lost=lambda peer, why:
                            lost.append((peer, why)))

    return make(0, faults_a), make(1, faults_b), inbox, lost


def _run_pair(cfg, sends, settle_s, faults_a="", faults_b=""):
    """Start a pair, send ``sends`` payloads 0->1, settle, tear down."""

    async def go():
        a, b, inbox, lost = _endpoint_pair(cfg, faults_a, faults_b)
        pa = await a.start("127.0.0.1")
        pb = await b.start("127.0.0.1")
        a.set_peers({1: ("127.0.0.1", pb)})
        b.set_peers({0: ("127.0.0.1", pa)})
        for payload in sends:
            a.send(1, payload)
        await asyncio.sleep(settle_s)
        stats = (a.stats, b.stats)
        await a.close()
        await b.close()
        return inbox, lost, stats

    return asyncio.run(go())


FAST = dict(nodes=2, retransmit_timeout_s=0.05, connect_timeout_s=2.0)


class TestReliableDelivery:
    def test_clean_delivery_in_order(self):
        cfg = DistConfig(**FAST)
        inbox, lost, _ = _run_pair(cfg, [{"i": i} for i in range(5)],
                                   settle_s=0.3)
        assert [m["i"] for _, m in inbox[1]] == [0, 1, 2, 3, 4]
        assert not lost

    def test_dropped_frames_heal_by_retransmission(self):
        cfg = DistConfig(**FAST)
        inbox, lost, (sa, _) = _run_pair(
            cfg, [{"i": i} for i in range(5)], settle_s=0.6,
            faults_a="drop:kind=data,count=3")
        assert sorted(m["i"] for _, m in inbox[1]) == [0, 1, 2, 3, 4]
        assert sa.dropped >= 3
        assert sa.retransmits >= 3
        assert not lost

    def test_duplicate_deliveries_are_discarded(self):
        # The receiver drops its first acks, forcing retransmission of
        # already-delivered frames; it must re-ack them but deliver
        # each exactly once.
        cfg = DistConfig(**FAST)
        inbox, lost, (_, sb) = _run_pair(
            cfg, [{"i": i} for i in range(3)], settle_s=0.6,
            faults_b="drop:kind=ack,count=2")
        assert [m["i"] for _, m in inbox[1]] == [0, 1, 2]
        assert sb.dup_discarded >= 1
        assert not lost

    def test_retransmit_budget_exhaustion_declares_peer_lost(self):
        cfg = DistConfig(**FAST, retransmit_budget=3)
        inbox, lost, (sa, _) = _run_pair(
            cfg, [{"i": 0}], settle_s=0.6,
            faults_a="drop:kind=data,count=0")
        assert inbox[1] == []
        assert lost and lost[0][0] == 1
        assert lost[0][1].startswith(reasons.RETRANSMIT_EXHAUSTED)

    def test_send_to_forgotten_peer_is_noop(self):
        async def go():
            cfg = DistConfig(**FAST)
            a, b, inbox, lost = _endpoint_pair(cfg)
            pb = await b.start("127.0.0.1")
            await a.start("127.0.0.1")
            a.set_peers({1: ("127.0.0.1", pb)})
            a.forget(1)
            a.send(1, {"i": 0})
            await asyncio.sleep(0.2)
            await a.close()
            await b.close()
            return inbox, lost

        inbox, lost = asyncio.run(go())
        assert inbox[1] == []
        assert not lost  # forget() fences silently, no loss callback

    def test_reconnect_budget_exhaustion_declares_peer_lost(self):
        async def go():
            cfg = DistConfig(nodes=2, connect_timeout_s=0.3,
                             reconnect_attempts=2, retry_backoff_s=0.01,
                             retry_backoff_max_s=0.02)
            a, _, inbox, lost = _endpoint_pair(cfg)
            await a.start("127.0.0.1")
            # Nobody is listening on the peer port.
            a.set_peers({1: ("127.0.0.1", 1)})
            a.send(1, {"i": 0})
            for _ in range(50):
                await asyncio.sleep(0.05)
                if lost:
                    break
            await a.close()
            return lost

        lost = asyncio.run(go())
        assert lost and lost[0][0] == 1
        assert lost[0][1].startswith(reasons.RECONNECT_EXHAUSTED)


class TestFrameAuth:
    """HMAC frame authentication (``PODS_DIST_SECRET``)."""

    SECRET = b"test-secret"

    def test_keyed_roundtrip(self):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"t": "data", "i": 9},
                                          self.SECRET))
            reader.feed_eof()
            return await read_frame(reader, self.SECRET)

        assert asyncio.run(go()) == {"t": "data", "i": 9}

    def test_corrupt_mac_dropped_counted_and_healed(self):
        # A flipped MAC bit drops the frame *below* the reliability
        # layer — the stream stays framed, the reject counter fires
        # once, and the next authentic frame is still delivered.
        rejects = []

        async def go():
            bad = bytearray(encode_frame({"i": 0}, self.SECRET))
            bad[6] ^= 0x01  # inside the 32-byte tag after the header
            reader = asyncio.StreamReader()
            reader.feed_data(bytes(bad))
            reader.feed_data(encode_frame({"i": 1}, self.SECRET))
            reader.feed_eof()
            return await read_frame(reader, self.SECRET,
                                    on_reject=lambda: rejects.append(1))

        assert asyncio.run(go()) == {"i": 1}
        assert len(rejects) == 1

    def test_tampered_body_rejected(self):
        async def go():
            frame = bytearray(encode_frame({"amount": 1}, self.SECRET))
            frame[-2] ^= 0x01  # flip a body byte, keep the tag
            reader = asyncio.StreamReader()
            reader.feed_data(bytes(frame))
            reader.feed_eof()
            return await read_frame(reader, self.SECRET)

        assert asyncio.run(go()) is None  # EOF after the only frame

    def test_unkeyed_frames_fail_verification(self):
        # A peer running without the secret cannot talk to a keyed
        # receiver: its bare frames never verify.  (The padding keeps
        # the stream long enough that the reader reaches verification
        # instead of hitting EOF while expecting the 32-byte tag.)
        rejects = []

        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"i": 0}) + bytes(64))
            reader.feed_eof()
            return await read_frame(reader, self.SECRET,
                                    on_reject=lambda: rejects.append(1))

        assert asyncio.run(go()) is None  # nothing ever verifies
        assert rejects

    def test_endpoints_deliver_with_shared_secret(self, monkeypatch):
        monkeypatch.setenv("PODS_DIST_SECRET", "wire-key")
        cfg = DistConfig(**FAST)
        inbox, lost, (sa, sb) = _run_pair(cfg,
                                          [{"i": i} for i in range(4)],
                                          settle_s=0.3)
        assert [m["i"] for _, m in inbox[1]] == [0, 1, 2, 3]
        assert not lost
        assert sa.auth_rejected == 0 and sb.auth_rejected == 0

    def test_mismatched_secrets_exhaust_retransmits(self, monkeypatch):
        # Receiver keyed differently: every data frame is rejected and
        # counted, no ack ever returns, and the sender's retransmit
        # budget exhausts into a canonical peer-lost reason.
        async def go():
            policy = RetryPolicy.from_config(
                DistConfig(**FAST, retransmit_budget=3))
            cfg = DistConfig(**FAST, retransmit_budget=3)
            inbox = {0: [], 1: []}
            lost = []

            def make(node):
                inj = DistFaultInjector(DistFaultPlan.parse(""), node)
                return Endpoint(node, cfg, policy, inj,
                                on_message=lambda src, m, n=node:
                                    inbox[n].append((src, m)),
                                on_peer_lost=lambda peer, why:
                                    lost.append((peer, why)))

            monkeypatch.setenv("PODS_DIST_SECRET", "key-a")
            a = make(0)
            monkeypatch.setenv("PODS_DIST_SECRET", "key-b")
            b = make(1)
            pa = await a.start("127.0.0.1")
            pb = await b.start("127.0.0.1")
            a.set_peers({1: ("127.0.0.1", pb)})
            b.set_peers({0: ("127.0.0.1", pa)})
            a.send(1, {"i": 0})
            for _ in range(50):
                await asyncio.sleep(0.05)
                if lost:
                    break
            stats = (a.stats, b.stats)
            await a.close()
            await b.close()
            return inbox, lost, stats

        inbox, lost, (sa, sb) = asyncio.run(go())
        assert inbox[1] == []
        assert sb.auth_rejected >= 1
        assert lost and lost[0][0] == 1
        assert lost[0][1].startswith(reasons.RETRANSMIT_EXHAUSTED)
