"""Pretty-printer round-trip tests: parse -> print -> parse is identity
(up to source locations)."""

import pytest

from repro.apps.livermore import KERNELS
from repro.apps.matmul import MATMUL_SOURCE
from repro.apps.nbody import NBODY_SOURCE
from repro.apps.simple_app import simple_source
from repro.apps.stencil import STENCIL_SOURCE
from repro.lang.parser import parse, parse_expression
from repro.lang.pprint import ast_fingerprint, format_expr, format_program

SOURCES = {
    "matmul": MATMUL_SOURCE,
    "stencil": STENCIL_SOURCE,
    "simple": simple_source(),
    "nbody": NBODY_SOURCE,
    **{f"livermore-{k}": v for k, v in KERNELS.items()},
}


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_round_trip_every_app(name):
    tree = parse(SOURCES[name])
    printed = format_program(tree)
    reparsed = parse(printed)
    assert ast_fingerprint(reparsed) == ast_fingerprint(tree)


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_printed_source_still_runs(name):
    from repro.api import compile_source

    printed = format_program(parse(SOURCES[name]))
    program = compile_source(printed)
    assert program.pods.instruction_count() > 0


@pytest.mark.parametrize("src", [
    "(1 + 2) * 3",
    "-x ^ 2",
    "if a < b then a else b",
    "not (a and b or c)",
    "A[i - 1, j + 1]",
    "min(sqrt(abs(x)), 2.5)",
    "f(g(1), h(2, 3))",
    "true",
    "(-4)",
])
def test_expression_round_trip(src):
    tree = parse_expression(src)
    printed = format_expr(tree)
    assert ast_fingerprint(parse_expression(printed)) == ast_fingerprint(tree)


def test_idempotent_formatting():
    src = simple_source()
    once = format_program(parse(src))
    twice = format_program(parse(once))
    assert once == twice
