"""Lexer tests."""

import pytest

from repro.common.errors import LexError
from repro.lang.lexer import tokenize


def kinds(src):
    return [t.kind for t in tokenize(src)]


def values(src):
    return [t.value for t in tokenize(src)][:-1]  # drop eof


class TestBasics:
    def test_empty_source_is_just_eof(self):
        assert kinds("") == ["eof"]

    def test_numbers(self):
        assert values("1 23 4.5 0.25 1e3 2.5e-2") == [1, 23, 4.5, 0.25, 1000.0, 0.025]

    def test_int_vs_float_types(self):
        one, pi = values("1 3.14")
        assert isinstance(one, int)
        assert isinstance(pi, float)

    def test_names_and_keywords(self):
        toks = tokenize("for foo to bar downto next while")
        assert [t.kind for t in toks][:-1] == [
            "for", "name", "to", "name", "downto", "next", "while",
        ]

    def test_booleans_are_num_tokens(self):
        toks = tokenize("true false")
        assert toks[0].kind == "num" and toks[0].value is True
        assert toks[1].kind == "num" and toks[1].value is False

    def test_underscore_names(self):
        assert tokenize("velocity_position _x x_1")[0].value == "velocity_position"

    def test_symbols_longest_match(self):
        assert kinds("<= < >= > == != =")[:-1] == [
            "<=", "<", ">=", ">", "==", "!=", "=",
        ]

    def test_all_arithmetic_symbols(self):
        assert kinds("+ - * / % ^")[:-1] == ["+", "-", "*", "/", "%", "^"]

    def test_brackets(self):
        assert kinds("( ) { } [ ] , ;")[:-1] == [
            "(", ")", "{", "}", "[", "]", ",", ";",
        ]


class TestCommentsAndLayout:
    def test_hash_comment(self):
        assert kinds("x # the rest is ignored\ny") == ["name", "name", "eof"]

    def test_double_slash_comment(self):
        assert kinds("x // ignored\ny") == ["name", "name", "eof"]

    def test_locations_track_lines(self):
        toks = tokenize("a\n  b")
        assert toks[0].loc.line == 1
        assert toks[1].loc.line == 2
        assert toks[1].loc.column == 3

    def test_division_not_comment(self):
        assert kinds("a / b") == ["name", "/", "name", "eof"]


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_error_location(self):
        with pytest.raises(LexError) as exc:
            tokenize("ab\n  @")
        assert exc.value.location.line == 2


class TestRealPrograms:
    def test_paper_example_tokenizes(self):
        src = """
        function main(n) {
            A = matrix(50, 10);
            for i = 1 to 50 {
                for j = 1 to 10 {
                    A[i, j] = f(i, j);
                }
            }
            return A;
        }
        """
        toks = tokenize(src)
        assert toks[-1].kind == "eof"
        assert sum(1 for t in toks if t.kind == "for") == 2
