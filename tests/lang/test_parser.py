"""Parser tests."""

import pytest

from repro.common.errors import ParseError
from repro.lang import ast_nodes as A
from repro.lang.parser import parse, parse_expression


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, A.BinOp) and e.op == "add"
        assert isinstance(e.right, A.BinOp) and e.right.op == "mul"

    def test_parentheses_override(self):
        e = parse_expression("(1 + 2) * 3")
        assert e.op == "mul"
        assert isinstance(e.left, A.BinOp) and e.left.op == "add"

    def test_left_associativity(self):
        e = parse_expression("10 - 4 - 3")
        assert e.op == "sub"
        assert isinstance(e.left, A.BinOp) and e.left.op == "sub"
        assert isinstance(e.right, A.Num) and e.right.value == 3

    def test_power_right_associative(self):
        e = parse_expression("2 ^ 3 ^ 2")
        assert e.op == "pow"
        assert isinstance(e.right, A.BinOp) and e.right.op == "pow"

    def test_comparison(self):
        e = parse_expression("a + 1 <= b * 2")
        assert e.op == "le"

    def test_boolean_precedence(self):
        e = parse_expression("a < 1 or b < 2 and c < 3")
        assert e.op == "or"
        assert isinstance(e.right, A.BinOp) and e.right.op == "and"

    def test_not(self):
        e = parse_expression("not a < b")
        assert isinstance(e, A.UnOp) and e.op == "not"

    def test_unary_minus_folds_literals(self):
        e = parse_expression("-5")
        assert isinstance(e, A.Num) and e.value == -5

    def test_unary_minus_on_var(self):
        e = parse_expression("-x")
        assert isinstance(e, A.UnOp) and e.op == "neg"

    def test_conditional_expression(self):
        e = parse_expression("if a < b then a else b")
        assert isinstance(e, A.IfExp)
        assert isinstance(e.cond, A.BinOp)

    def test_call_and_index(self):
        e = parse_expression("f(A[i, j], g())")
        assert isinstance(e, A.Call) and e.name == "f"
        assert isinstance(e.args[0], A.Index)
        assert e.args[0].indices and len(e.args[0].indices) == 2
        assert isinstance(e.args[1], A.Call) and e.args[1].args == []

    def test_nested_subscript_expressions(self):
        e = parse_expression("A[i - 1, j + 1]")
        assert isinstance(e, A.Index)
        assert e.indices[0].op == "sub"


class TestStatements:
    def test_paper_example_shape(self):
        src = """
        function main(n) {
            A = matrix(50, 10);
            for i = 1 to 50 {
                for j = 1 to 10 {
                    A[i, j] = i * 10 + j;
                }
            }
            return A;
        }
        """
        prog = parse(src)
        main = prog.function("main")
        assert main.params == ["n"]
        bind, loop, ret = main.body
        assert isinstance(bind, A.Bind)
        assert isinstance(bind.value, A.Call) and bind.value.name == "matrix"
        assert isinstance(loop, A.For) and not loop.descending
        inner = loop.body[0]
        assert isinstance(inner, A.For)
        write = inner.body[0]
        assert isinstance(write, A.ArrayWrite)
        assert isinstance(ret, A.Return)

    def test_downto_loop(self):
        prog = parse("function f() { for i = 10 downto 1 { x = i; } return 0; }")
        loop = prog.function("f").body[0]
        assert loop.descending

    def test_while_loop(self):
        prog = parse("""
        function f(n) {
            s = 0;
            while s < n { next s = s + 1; }
            return s;
        }
        """)
        loop = prog.function("f").body[1]
        assert isinstance(loop, A.While)
        assert isinstance(loop.body[0], A.NextBind)

    def test_if_else_chain(self):
        prog = parse("""
        function f(x) {
            if x < 0 { y = -1; } else if x == 0 { y = 0; } else { y = 1; }
            return 0;
        }
        """)
        stmt = prog.function("f").body[0]
        assert isinstance(stmt, A.If)
        assert isinstance(stmt.else_body[0], A.If)

    def test_next_statement(self):
        prog = parse("function f() { s = 0; for i = 1 to 3 { next s = s + i; } return s; }")
        loop = prog.function("f").body[1]
        assert isinstance(loop.body[0], A.NextBind)
        assert loop.body[0].name == "s"

    def test_multiple_functions(self):
        prog = parse("""
        function helper(x) { return x * 2; }
        function main() { return helper(21); }
        """)
        assert set(prog.functions) == {"helper", "main"}


class TestParseErrors:
    @pytest.mark.parametrize("src", [
        "",                                        # empty program
        "function f( { return 0; }",               # bad params
        "function f() { return 0 }",               # missing semicolon
        "function f() { for i = 1 { } return 0; }",  # missing to
        "function f() { x = ; return 0; }",        # missing expression
        "function f() { return 0; ",               # unterminated block
        "function f(a, a) { return 0; }",          # duplicate params
        "function f() { return 0; } function f() { return 1; }",  # dup fn
        "function f() { if x { y = 1; } else ; return 0; }",      # bad else
    ])
    def test_rejects(self, src):
        with pytest.raises(ParseError):
            parse(src)

    def test_error_carries_location(self):
        with pytest.raises(ParseError) as exc:
            parse("function f() {\n  x = ;\n}")
        assert exc.value.location is not None
        assert exc.value.location.line == 2
