"""Language torture tests: awkward-but-legal programs end to end."""

import pytest

from repro.api import compile_source


def run(src, args=(), pes=2):
    return compile_source(src).run_pods(args, num_pes=pes).value


class TestExpressionCorners:
    def test_deeply_nested_conditionals(self):
        src = """
        function classify(x) {
            return if x < -10 then -2
                   else if x < 0 then -1
                   else if x == 0 then 0
                   else if x < 10 then 1
                   else 2;
        }
        function main() {
            return classify(-20) * 10000 + classify(-5) * (-1000)
                 + classify(0) * 100 + classify(5) * 10 + classify(50);
        }
        """
        assert run(src) == -2 * 10000 + -1 * -1000 + 0 + 10 + 2

    def test_boolean_values_in_arithmetic_context(self):
        # Comparisons yield booleans; IdLite treats them as 0/1 like the
        # underlying Python semantics.
        src = "function main(a) { return (a > 2) + (a > 4); }"
        assert run(src, (3,)) == 1
        assert run(src, (5,)) == 2

    def test_mixed_precedence_gauntlet(self):
        src = "function main() { return 2 + 3 * 4 ^ 2 - 10 / 4 % 2; }"
        # 4^2=16; 3*16=48; 10/4=2.5; 2.5%2=0.5; 2+48-0.5
        assert run(src) == pytest.approx(49.5)

    def test_unary_minus_interactions(self):
        src = "function main(a) { return -a ^ 2; }"
        # Power binds tighter than unary minus (as in Python and
        # Fortran): -a^2 parses as -(a^2).
        assert run(src, (3,)) == -9

    def test_not_chains(self):
        src = "function main(a) { return if not (not (a > 0)) then 1 else 0; }"
        assert run(src, (5,)) == 1
        assert run(src, (-5,)) == 0


class TestStatementCorners:
    def test_loop_bounds_are_expressions(self):
        src = """
        function main(n) {
            s = 0;
            for i = n - 2 to n * 2 - 3 { next s = s + i; }
            return s;
        }
        """
        n = 5
        assert run(src, (n,)) == sum(range(n - 2, 2 * n - 2))

    def test_loop_variable_shadows_outer_binding(self):
        src = """
        function main(n) {
            i = 100;
            s = 0;
            for i = 1 to n { next s = s + i; }
            return s + i;
        }
        """
        assert run(src, (4,)) == 10 + 100

    def test_same_loop_var_in_sequential_loops(self):
        src = """
        function main(n) {
            a = 0;
            b = 0;
            for i = 1 to n { next a = a + i; }
            for i = 1 to n { next b = b + i * i; }
            return a * 1000 + b;
        }
        """
        assert run(src, (3,)) == 6 * 1000 + 14

    def test_while_with_compound_condition(self):
        src = """
        function main(n) {
            x = 0;
            y = n;
            while x < y and y > 1 {
                next x = x + 1;
                next y = y - 1;
            }
            return x * 100 + y;
        }
        """
        # (0,7)->(1,6)->(2,5)->(3,4)->(4,3); 4 < 3 fails -> stop.
        assert run(src, (7,)) == 4 * 100 + 3

    def test_empty_branches(self):
        src = """
        function main(a) {
            s = 0;
            if a > 0 { } else { }
            return s + a;
        }
        """
        assert run(src, (5,)) == 5

    def test_comment_styles_everywhere(self):
        src = """
        # leading comment
        function main(n) {  // trailing
            s = 0;          # hash style
            for i = 1 to n {
                next s = s + i;  // per line
            }
            return s;  # done
        }
        """
        assert run(src, (4,)) == 10


class TestArrayCorners:
    def test_array_of_one_element(self):
        src = """
        function main() {
            A = array(1);
            A[1] = 42;
            return A[1];
        }
        """
        assert run(src) == 42

    def test_computed_dimensions(self):
        src = """
        function main(n) {
            A = matrix(n * 2, n + 1);
            A[n * 2, n + 1] = 7;
            return A[n * 2, n + 1];
        }
        """
        assert run(src, (3,)) == 7

    def test_array_id_through_conditional_expression(self):
        src = """
        function main(flag) {
            A = array(4);
            B = array(4);
            A[1] = 10;
            B[1] = 20;
            C = if flag > 0 then A else B;
            return C[1];
        }
        """
        assert run(src, (1,)) == 10
        assert run(src, (0,)) == 20

    def test_nested_subscript_expressions(self):
        src = """
        function main(n) {
            P = array(n);
            V = array(n);
            for i = 1 to n { P[i] = n - i + 1; }
            for i = 1 to n { V[i] = i * 10; }
            s = 0;
            for i = 1 to n { next s = s + V[P[i]]; }
            return s;
        }
        """
        assert run(src, (5,)) == sum(i * 10 for i in range(1, 6))

    def test_boolean_stored_in_array(self):
        src = """
        function main(n) {
            F = array(n);
            for i = 1 to n { F[i] = i % 2 == 0; }
            s = 0;
            for i = 1 to n { next s = s + (if F[i] then 1 else 0); }
            return s;
        }
        """
        assert run(src, (7,)) == 3
