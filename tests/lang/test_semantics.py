"""Semantic-analysis tests."""

import pytest

from repro.common.errors import SemanticError
from repro.lang import ast_nodes as A
from repro.lang.parser import parse
from repro.lang.semantics import analyze


def check(src):
    prog = parse(src)
    info = analyze(prog)
    return prog, info


class TestAccepts:
    def test_paper_example(self):
        check("""
        function main(n) {
            A = matrix(50, 10);
            for i = 1 to 50 {
                for j = 1 to 10 { A[i, j] = i * 10 + j; }
            }
            return A;
        }
        """)

    def test_carried_vars_recorded_on_loop(self):
        prog, _ = check("""
        function f(n) {
            s = 0;
            for i = 1 to n { next s = s + i; }
            return s;
        }
        """)
        loop = prog.function("f").body[1]
        assert loop.carried == ["s"]

    def test_carried_var_attaches_to_innermost_loop(self):
        prog, _ = check("""
        function f(n) {
            total = 0;
            for i = 1 to n {
                row = 0;
                for j = 1 to n { next row = row + j; }
                next total = total + row;
            }
            return total;
        }
        """)
        outer = prog.function("f").body[1]
        inner = outer.body[1]
        assert outer.carried == ["total"]
        assert inner.carried == ["row"]

    def test_next_in_both_if_branches(self):
        check("""
        function f(n) {
            s = 0;
            for i = 1 to n {
                if i % 2 == 0 { next s = s + i; } else { next s = s - i; }
            }
            return s;
        }
        """)

    def test_same_name_in_sibling_scopes(self):
        check("""
        function f(n) {
            if n > 0 { t = 1; } else { t = 2; }
            return n;
        }
        """)

    def test_shadowing_in_inner_scope(self):
        # A loop body is a new scope; rebinding a new name there is fine.
        check("""
        function f(n) {
            for i = 1 to n { x = i * 2; }
            return n;
        }
        """)

    def test_arrays_passed_to_functions(self):
        check("""
        function get(B, i) { return B[i]; }
        function main() {
            A = array(4);
            A[1] = 10;
            return get(A, 1);
        }
        """)

    def test_recursion_allowed(self):
        _, info = check("""
        function fib(n) {
            return if n < 2 then n else fib(n - 1) + fib(n - 2);
        }
        function main() { return fib(10); }
        """)
        assert "fib" in info.functions["fib"].calls

    def test_while_with_carried(self):
        prog, _ = check("""
        function f(n) {
            s = 1;
            while s < n { next s = s * 2; }
            return s;
        }
        """)
        loop = prog.function("f").body[1]
        assert loop.carried == ["s"]

    def test_if_expression_kinds(self):
        check("function f(c, a, b) { return if c then a else b; }")


class TestRejects:
    def reject(self, src, fragment):
        with pytest.raises(SemanticError) as exc:
            check(src)
        assert fragment in str(exc.value)

    def test_undefined_name(self):
        self.reject("function f() { return x; }", "undefined name 'x'")

    def test_use_before_definition(self):
        self.reject("function f() { y = x + 1; x = 2; return y; }",
                    "undefined name 'x'")

    def test_double_binding(self):
        self.reject("function f() { x = 1; x = 2; return x; }",
                    "single-assignment")

    def test_rebinding_parameter(self):
        self.reject("function f(x) { x = 1; return x; }", "single-assignment")

    def test_next_outside_loop(self):
        self.reject("function f() { s = 0; next s = 1; return s; }",
                    "outside of a loop")

    def test_next_of_loop_local(self):
        self.reject("""
        function f(n) {
            for i = 1 to n { s = 0; next s = s + 1; }
            return n;
        }
        """, "not defined outside")

    def test_next_of_loop_variable(self):
        self.reject("""
        function f(n) {
            for i = 1 to n { next i = i + 2; }
            return n;
        }
        """, "not defined outside")

    def test_next_twice_on_one_path(self):
        self.reject("""
        function f(n) {
            s = 0;
            for i = 1 to n { next s = s + 1; next s = s + 2; }
            return s;
        }
        """, "twice on one path")

    def test_subscript_on_scalar(self):
        self.reject("function f() { x = 1; return x[1]; }", "scalar")

    def test_write_to_scalar(self):
        self.reject("function f() { x = 1; x[1] = 2; return x; }", "scalar")

    def test_undefined_function(self):
        self.reject("function f() { return g(1); }", "undefined function")

    def test_wrong_arity(self):
        self.reject("""
        function g(a, b) { return a + b; }
        function f() { return g(1); }
        """, "takes 2 argument")

    def test_wrong_builtin_arity(self):
        self.reject("function f() { return sqrt(1, 2); }", "exactly 1")
        self.reject("function f() { return min(1); }", "exactly 2")
        self.reject("function f() { A = matrix(1); return 0; }", "2 dimensions")
        self.reject("function f() { A = array(1, 2, 3, 4); return 0; }",
                    "1 to 3")

    def test_return_inside_loop(self):
        self.reject("""
        function f(n) {
            for i = 1 to n { return i; }
            return 0;
        }
        """, "inside a loop")

    def test_missing_return(self):
        self.reject("function f() { x = 1; }", "does not return")

    def test_if_without_else_does_not_count_as_return(self):
        self.reject("""
        function f(n) {
            if n > 0 { return 1; }
        }
        """, "does not return")

    def test_if_with_both_returns_counts(self):
        check("""
        function f(n) {
            if n > 0 { return 1; } else { return 0; }
        }
        """)

    def test_unreachable_after_return(self):
        self.reject("function f() { return 1; x = 2; }", "unreachable")
