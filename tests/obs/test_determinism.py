"""Determinism and Church-Rosser tests for the observability layer.

Two levels of guarantee:

1. **Replay determinism** — two runs of the same (program, args, config)
   produce byte-identical exports: golden trace lines, Perfetto JSON,
   metrics JSONL/CSV.  This is what lets exports double as fixtures.

2. **Church-Rosser under jitter** — with ``jitter_seed`` set, message
   deliveries get pseudo-random extra delays.  Results must not change,
   and neither may each SP's *causal* event subsequence.  Frame uids are
   timing-dependent, so SPs are identified by their stable spawn path:
   ``path(frame) = path(parent) + (spawn_seq,)`` recovered from the
   frame-create ctx tuples, keyed ``(name, path, pe)`` (the PE matters
   because replicated frames share a path).
"""

from __future__ import annotations

import ast
import re

from repro.obs.export import metrics_csv, metrics_jsonl, perfetto_json, \
    trace_golden

from tests.obs.conftest import run_observed

_CREATE = re.compile(r"(\S+) uid=(\d+) ctx=(\(.*\))")

# Block events are timing-dependent (a yield resumes as a new block
# service); these three are causal per SP.
CAUSAL_KINDS = ("frame-create", "rf-range", "frame-end")


def stable_sp_keys(tracer) -> dict[int, tuple]:
    """frame uid -> (name, spawn-path, pe), jitter-invariant."""
    info: dict[int, tuple] = {}
    for e in tracer.events:
        if e.kind != "frame-create":
            continue
        m = _CREATE.match(e.detail)
        name, uid, ctx = m.group(1), int(m.group(2)), \
            ast.literal_eval(m.group(3))
        if ctx == ("root",):
            path: tuple = ()
        else:
            path = info[ctx[0]][1] + (ctx[1],)
        info[uid] = (name, path, e.pe)
    return info


def causal_subsequences(machine) -> dict[tuple, list]:
    keys = stable_sp_keys(machine.tracer)
    out: dict[tuple, list] = {}
    for e in machine.tracer.events:
        if e.sp is None or e.kind not in CAUSAL_KINDS:
            continue
        detail = e.detail if e.kind == "rf-range" else ""
        out.setdefault(keys[e.sp], []).append((e.kind, detail))
    return out


class TestReplayDeterminism:
    def test_exports_byte_identical(self):
        runs = [run_observed() for _ in range(2)]
        (m1, r1), (m2, r2) = runs
        assert r1.value == r2.value
        assert (trace_golden(m1.tracer.events)
                == trace_golden(m2.tracer.events))
        assert (perfetto_json(r1.stats.timelines, m1.tracer.events,
                              num_pes=2)
                == perfetto_json(r2.stats.timelines, m2.tracer.events,
                                 num_pes=2))
        assert metrics_jsonl(r1.stats.registry) \
            == metrics_jsonl(r2.stats.registry)
        assert metrics_csv(r1.stats.registry) \
            == metrics_csv(r2.stats.registry)

    def test_jitter_itself_is_deterministic(self):
        m1, r1 = run_observed(jitter_seed=7)
        m2, r2 = run_observed(jitter_seed=7)
        assert r1.value == r2.value
        assert (trace_golden(m1.tracer.events)
                == trace_golden(m2.tracer.events))


class TestChurchRosserUnderJitter:
    def test_results_and_causal_order_jitter_invariant(self):
        baseline_machine, baseline = run_observed()
        sequences = causal_subsequences(baseline_machine)
        for seed in (1, 99):
            machine, result = run_observed(jitter_seed=seed)
            # Same answer (the paper's determinacy claim) ...
            assert result.value == baseline.value
            # ... same SPs spawned on the same PEs, and per SP the same
            # causal event subsequence, even though global interleaving
            # and all timings shift.
            assert causal_subsequences(machine) == sequences

    def test_semantic_metrics_jitter_invariant(self):
        _, baseline = run_observed()
        _, jittered = run_observed(jitter_seed=42)
        for name in ("array.element_writes", "rf.items",
                     "sim.instructions"):
            assert jittered.stats.registry.total(name) \
                == baseline.stats.registry.total(name), name
