"""Tests for the Perfetto/Chrome trace_event exporter."""

from __future__ import annotations

import json

from repro.obs.export import SP_TRACK, filter_events, perfetto_json, \
    perfetto_trace, validate_trace_events
from repro.sim.stats import UNITS
from repro.sim.trace import TraceEvent

from tests.obs.conftest import run_observed


class TestExportedTrace:
    def test_validates_clean(self, observed_run):
        machine, result = observed_run
        trace = perfetto_trace(result.stats.timelines,
                               machine.tracer.events, num_pes=2)
        assert validate_trace_events(trace) == []

    def test_track_metadata_per_pe_and_unit(self, observed_run):
        machine, result = observed_run
        trace = perfetto_trace(result.stats.timelines,
                               machine.tracer.events, num_pes=2)
        names = {(e["pid"], e["tid"]): e["args"]["name"]
                 for e in trace["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        for pe in (0, 1):
            for tid, unit in enumerate(UNITS):
                assert names[(pe, tid)] == f"PE{pe} {unit}"
            assert names[(pe, SP_TRACK)] == f"PE{pe} SP"

    def test_sp_lifecycle_spans_and_flows_balanced(self, observed_run):
        machine, result = observed_run
        trace = perfetto_trace(result.stats.timelines,
                               machine.tracer.events, num_pes=2)
        by_ph: dict[str, list] = {}
        for e in trace["traceEvents"]:
            by_ph.setdefault(e["ph"], []).append(e)
        # every async SP span opens and closes; every flow start finishes
        assert len(by_ph["b"]) == len(by_ph["e"]) > 0
        assert len(by_ph["s"]) == len(by_ph["f"]) > 0
        assert {e["id"] for e in by_ph["s"]} == {e["id"] for e in by_ph["f"]}

    def test_unit_spans_cover_busy_time(self, observed_run):
        machine, result = observed_run
        trace = perfetto_trace(result.stats.timelines,
                               machine.tracer.events, num_pes=2)
        x_total = sum(e["dur"] for e in trace["traceEvents"]
                      if e["ph"] == "X" and e["name"] == "EU")
        assert x_total > 0
        derived = result.stats.timelines.busy("EU")
        assert abs(x_total - derived) < 1e-6

    def test_byte_identical_and_parseable(self, observed_run):
        machine, result = observed_run
        a = perfetto_json(result.stats.timelines, machine.tracer.events,
                          num_pes=2)
        b = perfetto_json(result.stats.timelines, machine.tracer.events,
                          num_pes=2)
        assert a == b
        assert validate_trace_events(json.loads(a)) == []

    def test_pe_and_since_filters(self, observed_run):
        machine, result = observed_run
        trace = perfetto_trace(result.stats.timelines,
                               machine.tracer.events, num_pes=2,
                               pe=1, since_us=10.0)
        assert validate_trace_events(trace) == []
        for e in trace["traceEvents"]:
            assert e["pid"] == 1
            if e["ph"] not in ("M", "X"):
                assert e["ts"] >= 10.0


class TestFilterEvents:
    EVENTS = [
        TraceEvent(1.0, 0, "block", "a"),
        TraceEvent(2.0, 1, "block", "b"),
        TraceEvent(3.0, 0, "message", "c"),
    ]

    def test_by_pe(self):
        assert [e.detail for e in filter_events(self.EVENTS, pe=0)] \
            == ["a", "c"]

    def test_by_since(self):
        assert [e.detail for e in filter_events(self.EVENTS, since_us=2.0)] \
            == ["b", "c"]

    def test_by_kind(self):
        assert [e.detail for e in filter_events(self.EVENTS, kind="message")] \
            == ["c"]


class TestValidator:
    def test_rejects_non_trace(self):
        assert validate_trace_events([]) != []
        assert validate_trace_events({"foo": 1}) != []

    def test_rejects_bad_events(self):
        bad = {"traceEvents": [
            {"ph": "X", "pid": 0, "tid": 0, "name": "x", "ts": 1.0},
            {"ph": "f", "bp": "e", "pid": 0, "tid": 0, "name": "y",
             "ts": 1.0, "cat": "sp-flow", "id": 9},
        ]}
        problems = validate_trace_events(bad)
        assert any("dur" in p for p in problems)
        assert any("without a start" in p for p in problems)
