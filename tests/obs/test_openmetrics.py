"""OpenMetrics exposition: golden output from a hand-built registry,
determinism, escaping, and live-vs-stored agreement."""

from __future__ import annotations

from repro.obs.export import metrics_openmetrics, openmetrics_from_rows
from repro.obs.registry import MetricsRegistry

from tests.obs.conftest import run_observed


def small_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.inc("instructions", 40, pe="0")
    reg.inc("instructions", 2, pe="1")
    reg.inc("rf.subrange", 4)
    reg.set_gauge("finish_time_us", 1234.5)
    reg.observe("match_wait_us", 0.5, pe="0")
    reg.observe("match_wait_us", 3.0, pe="0")
    return reg


GOLDEN = """\
# TYPE pods_instructions counter
pods_instructions_total{pe="0"} 40
pods_instructions_total{pe="1"} 2
# TYPE pods_rf_subrange counter
pods_rf_subrange_total 4
# TYPE pods_finish_time_us gauge
pods_finish_time_us 1234.5
# TYPE pods_match_wait_us histogram"""


class TestGolden:
    def test_small_registry_exposition(self):
        text = small_registry().to_openmetrics()
        lines = text.split("\n")
        assert text.startswith(GOLDEN)
        assert lines[-1] == "# EOF"
        # The two observations (0.5 and 3.0) land in the right
        # cumulative buckets: le=0.5 sees one, le=5 onwards see both.
        assert 'pods_match_wait_us_bucket{pe="0",le="0.5"} 1' in lines
        assert 'pods_match_wait_us_bucket{pe="0",le="2"} 1' in lines
        assert 'pods_match_wait_us_bucket{pe="0",le="5"} 2' in lines
        assert 'pods_match_wait_us_bucket{pe="0",le="+Inf"} 2' in lines
        assert 'pods_match_wait_us_count{pe="0"} 2' in lines
        assert 'pods_match_wait_us_sum{pe="0"} 3.5' in lines

    def test_type_line_emitted_once_per_family(self):
        text = small_registry().to_openmetrics()
        assert text.count("# TYPE pods_instructions counter") == 1
        assert text.count("# EOF") == 1

    def test_deterministic(self):
        assert small_registry().to_openmetrics() == \
            small_registry().to_openmetrics()
        # Insertion order must not leak into the page.
        reg = MetricsRegistry()
        reg.inc("instructions", 2, pe="1")
        reg.set_gauge("finish_time_us", 1234.5)
        reg.observe("match_wait_us", 3.0, pe="0")
        reg.observe("match_wait_us", 0.5, pe="0")
        reg.inc("rf.subrange", 4)
        reg.inc("instructions", 40, pe="0")
        assert reg.to_openmetrics() == small_registry().to_openmetrics()

    def test_prefix_and_name_sanitizing(self):
        reg = MetricsRegistry()
        reg.inc("rf.sub-range", 1)
        assert "custom_rf_sub_range_total 1" in \
            reg.to_openmetrics(prefix="custom")

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 1.0, detail='say "hi"\nback\\slash')
        text = reg.to_openmetrics()
        assert 'detail="say \\"hi\\"\\nback\\\\slash"' in text

    def test_metrics_openmetrics_helper(self):
        reg = small_registry()
        assert metrics_openmetrics(reg) == reg.to_openmetrics()


class TestStoredRows:
    def rows(self, reg: MetricsRegistry) -> list[dict]:
        return [{"kind": r.kind, "name": r.name,
                 "labels": dict(r.labels), "value": r.value}
                for r in reg.rows()]

    def test_counters_and_gauges_match_live(self):
        reg = small_registry()
        live = [ln for ln in reg.to_openmetrics().split("\n")
                if "_bucket" not in ln and "histogram" not in ln
                and "_count" not in ln and "_sum" not in ln]
        stored = [ln for ln in openmetrics_from_rows(self.rows(reg))
                  .split("\n")
                  if "histogram" not in ln and "_count" not in ln
                  and "_sum" not in ln]
        assert live == stored

    def test_histogram_summary_from_stored_rows(self):
        text = openmetrics_from_rows(self.rows(small_registry()))
        assert 'pods_match_wait_us_count{pe="0"} 2' in text
        assert 'pods_match_wait_us_sum{pe="0"} 3.5' in text
        assert "_bucket" not in text
        assert text.endswith("# EOF")

    def test_record_rows_round_trip(self):
        """A record's metrics section re-exposes every non-bucket sample
        of the live page."""
        _, result = run_observed()
        reg = result.stats.registry
        live = set(reg.to_openmetrics().split("\n"))
        stored = openmetrics_from_rows(self.rows(reg)).split("\n")
        for line in stored:
            if line.startswith("# TYPE") or line == "# EOF":
                continue
            assert line in live, line


class TestLiveRun:
    def test_observed_run_exposes_core_series(self):
        _, result = run_observed()
        text = result.stats.registry.to_openmetrics()
        assert text.endswith("# EOF")
        assert 'pods_sim_instructions_total{pe="0"}' in text
        lines = text.split("\n")
        assert len(lines) == len(set(lines)), "duplicate exposition lines"
