"""RunStore: content addressing, the append-only index, reference
resolution, and the Hypothesis round-trip property (record -> put ->
get -> diff-against-self is empty and byte-stable)."""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import runrecord
from repro.obs.store import (MIN_PREFIX, RunStore, RunStoreError,
                             load_record)

# ---------------------------------------------------------------------
# strategies: arbitrary *valid* pods-run/v1 records
# ---------------------------------------------------------------------

_names = st.text(alphabet="abcdefghij._", min_size=1, max_size=12)
_scalars = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
    st.booleans(),
    st.none(),
)

_metric_rows = st.lists(
    st.builds(
        dict,
        kind=st.sampled_from(["counter", "gauge", "histogram"]),
        name=_names,
        labels=st.dictionaries(st.sampled_from(["pe", "unit", "op"]),
                               st.text(max_size=6), max_size=2),
        value=st.integers(min_value=0, max_value=10**9),
    ),
    max_size=6,
    unique_by=lambda r: (r["kind"], r["name"],
                         tuple(sorted(r["labels"].items()))),
)

_wait_rows = st.lists(
    st.builds(
        dict,
        pe=st.integers(min_value=0, max_value=7),
        category=st.sampled_from(["token-wait", "remote-read",
                                  "net-queue"]),
        us=st.floats(min_value=0, max_value=1e9, allow_nan=False,
                     allow_infinity=False),
    ),
    max_size=6,
)


@st.composite
def records(draw):
    doc = {
        "schema": runrecord.SCHEMA,
        "program": {"name": draw(_names)},
        "args": draw(st.lists(_scalars, max_size=3)),
        "config": {
            "backend": draw(st.sampled_from(["sim", "seq", "parallel"])),
            "parallelism": draw(st.integers(min_value=1, max_value=64)),
            **draw(st.dictionaries(_names, _scalars, max_size=4)),
        },
        "result": {
            "value": draw(_scalars),
            "time_us": draw(st.one_of(
                st.none(),
                st.floats(min_value=0, max_value=1e12, allow_nan=False,
                          allow_infinity=False))),
            "wall_time_s": draw(st.one_of(
                st.none(),
                st.floats(min_value=0, max_value=1e6, allow_nan=False,
                          allow_infinity=False))),
        },
    }
    if draw(st.booleans()):
        doc["metrics"] = draw(_metric_rows)
    if draw(st.booleans()):
        doc["waits"] = draw(_wait_rows)
    return doc


# ---------------------------------------------------------------------
# the round-trip property
# ---------------------------------------------------------------------


class TestRoundTripProperty:
    @settings(max_examples=60, deadline=None)
    @given(doc=records())
    def test_put_get_diff_self_empty_and_byte_stable(self, tmp_path_factory,
                                                     doc):
        assert runrecord.validate(doc) == [], "strategy must emit valid docs"
        root = str(tmp_path_factory.mktemp("ledger"))
        store = RunStore(root)

        rid = store.put(doc)
        loaded = store.get(rid)

        # Round trip: a loaded record diffs empty against its source
        # (wall time is identical, so even the wall note stays silent).
        d = runrecord.diff(doc, loaded)
        assert d.ok and d.empty, d.render()

        # Byte stability: the object file holds exactly the canonical
        # encoding, and depositing again neither rewrites the object nor
        # changes the id.
        path = store.object_path(rid)
        with open(path, "rb") as fh:
            first = fh.read()
        assert first == (runrecord.canonical_json(doc) + "\n").encode()
        before = os.path.getmtime(path)
        assert store.put(json.loads(first)) == rid
        with open(path, "rb") as fh:
            assert fh.read() == first
        assert os.path.getmtime(path) == before

        # The ledger recorded both deposits of the one object.
        entries = store.entries()
        assert [e.id for e in entries] == [rid, rid]
        assert [e.seq for e in entries] == [0, 1]

    @settings(max_examples=30, deadline=None)
    @given(doc=records())
    def test_id_invariant_under_wall_time(self, doc):
        other = json.loads(runrecord.canonical_json(doc))
        other["result"]["wall_time_s"] = 42.0
        assert runrecord.record_id(doc) == runrecord.record_id(other)


# ---------------------------------------------------------------------
# deterministic store mechanics
# ---------------------------------------------------------------------


def simple_record(name: str = "demo", pes: int = 2, value=7,
                  backend: str = "sim") -> dict:
    return {
        "schema": runrecord.SCHEMA,
        "program": {"name": name},
        "args": [3],
        "config": {"backend": backend, "parallelism": pes},
        "result": {"value": value, "time_us": 100.0, "wall_time_s": None},
    }


class TestStore:
    def test_put_rejects_invalid(self, tmp_path):
        store = RunStore(str(tmp_path / "ledger"))
        with pytest.raises(RunStoreError, match="invalid record"):
            store.put({"schema": "nope"})
        assert store.entries() == []

    def test_resolve_prefix_and_latest(self, tmp_path):
        store = RunStore(str(tmp_path / "ledger"))
        a = store.put(simple_record(value=1))
        b = store.put(simple_record(value=2))
        assert store.resolve(a[:MIN_PREFIX]) in (a, b)
        assert store.resolve(a[:12]) == a
        assert store.resolve("latest") == b
        assert store.get("latest")["result"]["value"] == 2

    def test_resolve_rejects_short_and_unknown(self, tmp_path):
        store = RunStore(str(tmp_path / "ledger"))
        store.put(simple_record())
        with pytest.raises(RunStoreError, match="too short"):
            store.resolve("abc")
        with pytest.raises(RunStoreError, match="no record matching"):
            store.resolve("0" * 16)

    def test_latest_on_empty_ledger(self, tmp_path):
        with pytest.raises(RunStoreError, match="empty"):
            RunStore(str(tmp_path / "ledger")).resolve("latest")

    def test_select_filters(self, tmp_path):
        store = RunStore(str(tmp_path / "ledger"))
        store.put(simple_record(name="a", pes=2))
        store.put(simple_record(name="a", pes=4))
        store.put(simple_record(name="b", pes=2, backend="seq"))
        assert len(store.select(program="a")) == 2
        assert len(store.select(program="a", parallelism=4)) == 1
        assert [e.backend for e in store.select(backend="seq")] == ["seq"]
        assert store.select(program="zzz") == []

    def test_get_detects_tampered_object(self, tmp_path):
        store = RunStore(str(tmp_path / "ledger"))
        rid = store.put(simple_record())
        path = store.object_path(rid)
        doc = json.load(open(path))
        doc["result"]["value"] = 999
        with open(path, "w") as fh:
            fh.write(runrecord.canonical_json(doc) + "\n")
        with pytest.raises(RunStoreError, match="content hash mismatch"):
            store.get(rid)

    def test_corrupt_index_line_is_a_structured_error(self, tmp_path):
        store = RunStore(str(tmp_path / "ledger"))
        store.put(simple_record())
        with open(store.index_path, "a") as fh:
            fh.write("{not json\n")
        with pytest.raises(RunStoreError, match="corrupt index line"):
            store.entries()

    def test_two_ledgers_same_runs_byte_identical(self, tmp_path):
        docs = [simple_record(value=v) for v in (1, 2, 3)]
        roots = []
        for sub in ("one", "two"):
            store = RunStore(str(tmp_path / sub))
            for doc in docs:
                store.put(json.loads(json.dumps(doc)))
            roots.append(store)
        for a, b in [(roots[0], roots[1])]:
            assert open(a.index_path, "rb").read() == \
                open(b.index_path, "rb").read()
            for e in a.entries():
                assert open(a.object_path(e.id), "rb").read() == \
                    open(b.object_path(e.id), "rb").read()

    def test_env_var_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("PODS_RUNS_DIR", str(tmp_path / "env-ledger"))
        store = RunStore()
        assert store.root == str(tmp_path / "env-ledger")

    def test_load_record_file(self, tmp_path):
        doc = simple_record()
        path = tmp_path / "baseline.json"
        path.write_text(runrecord.canonical_json(doc) + "\n")
        assert load_record(str(path)) == doc
        path.write_text("{\"schema\": \"nope\"}\n")
        with pytest.raises(RunStoreError):
            load_record(str(path))
