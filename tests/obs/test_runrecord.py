"""Run records: schema validation, capture from live backends, diff
gating, and fast-path/reference determinism."""

from __future__ import annotations

import json

import pytest

from repro.api import compile_source
from repro.backend import config_fingerprint, get_backend
from repro.common.config import MachineConfig, ObsConfig, SimConfig
from repro.obs import runrecord

from tests.obs.conftest import FILL_AND_SUM

FULL_OBS = ObsConfig(metrics=True, timelines=True, waits=True)


def observed_result(pes: int = 2, fast_path: bool = True):
    program = compile_source(FILL_AND_SUM)
    config = SimConfig(machine=MachineConfig(num_pes=pes), obs=FULL_OBS,
                       fast_path=fast_path)
    result = program.run((3,), backend="sim", config=config)
    return program, result


class TestBuild:
    def test_record_is_valid_and_complete(self):
        program, result = observed_result()
        doc = result.to_run_record(program=program, args=(3,))
        assert runrecord.validate(doc) == []
        assert doc["schema"] == runrecord.SCHEMA
        assert doc["program"]["name"] == "main"
        assert len(doc["program"]["source_sha256"]) == 64
        assert doc["config"]["backend"] == "sim"
        assert doc["config"]["parallelism"] == 2
        assert doc["config"]["machine.num_pes"] == 2
        assert doc["result"]["value"] == 36
        assert doc["result"]["time_us"] == result.time_us
        assert doc["result"]["wall_time_s"] is None
        assert doc["metrics"], "metrics registry must be captured"
        assert doc["waits"], "wait attribution must be captured"
        assert doc["critpath"]["total_us"] == pytest.approx(result.time_us)

    def test_fingerprint_attached_by_backend_run(self):
        _, result = observed_result()
        assert result.fingerprint["backend"] == "sim"
        assert result.fingerprint["config_type"] == "SimConfig"
        assert result.fingerprint["obs.metrics"] is True

    def test_unobserved_run_yields_minimal_record(self):
        program = compile_source(FILL_AND_SUM)
        result = program.run((3,), backend="sim", parallelism=2)
        doc = result.to_run_record(program=program, args=(3,))
        assert runrecord.validate(doc) == []
        assert "metrics" not in doc
        assert "waits" not in doc
        assert "critpath" not in doc

    def test_seq_backend_record(self):
        program = compile_source(FILL_AND_SUM)
        result = get_backend("seq").run(program, (3,))
        doc = result.to_run_record(program=program, args=(3,))
        assert runrecord.validate(doc) == []
        assert doc["config"]["backend"] == "seq"

    def test_fingerprint_flattens_nested_dataclasses(self):
        fp = config_fingerprint("sim", 4, SimConfig(
            machine=MachineConfig(num_pes=4, page_size=16)))
        assert fp["machine.page_size"] == 16
        assert fp["obs.trace_mode"] == "drop"
        assert all(isinstance(v, (int, float, str, bool, type(None)))
                   for v in fp.values())


class TestValidate:
    def base(self) -> dict:
        return {
            "schema": runrecord.SCHEMA,
            "program": {"name": "main"},
            "args": [3],
            "config": {"backend": "sim", "parallelism": 2},
            "result": {"value": 1, "time_us": 10.0, "wall_time_s": None},
        }

    def test_minimal_ok(self):
        assert runrecord.validate(self.base()) == []

    def test_bad_schema(self):
        doc = self.base()
        doc["schema"] = "pods-run/v0"
        assert any("schema" in p for p in runrecord.validate(doc))

    def test_bool_parallelism_rejected(self):
        doc = self.base()
        doc["config"]["parallelism"] = True
        assert any("parallelism" in p for p in runrecord.validate(doc))

    def test_nan_time_rejected(self):
        doc = self.base()
        doc["result"]["time_us"] = float("nan")
        assert any("time_us" in p for p in runrecord.validate(doc))

    def test_duplicate_metric_rows_rejected(self):
        doc = self.base()
        row = {"kind": "counter", "name": "x", "labels": {"pe": "0"},
               "value": 1}
        doc["metrics"] = [row, dict(row)]
        assert any("duplicate" in p for p in runrecord.validate(doc))

    def test_nonscalar_config_rejected(self):
        doc = self.base()
        doc["config"]["machine"] = {"num_pes": 2}
        assert any("scalar" in p for p in runrecord.validate(doc))


class TestIds:
    def test_id_ignores_wall_time(self):
        program, result = observed_result()
        doc = result.to_run_record(program=program, args=(3,))
        other = json.loads(runrecord.canonical_json(doc))
        other["result"]["wall_time_s"] = 123.456
        assert runrecord.record_id(doc) == runrecord.record_id(other)

    def test_id_sees_value_change(self):
        program, result = observed_result()
        doc = result.to_run_record(program=program, args=(3,))
        other = json.loads(runrecord.canonical_json(doc))
        other["result"]["value"] = 999
        assert runrecord.record_id(doc) != runrecord.record_id(other)


class TestDiff:
    def test_self_diff_is_empty(self):
        program, result = observed_result()
        doc = result.to_run_record(program=program, args=(3,))
        d = runrecord.diff(doc, doc)
        assert d.ok and d.empty
        assert "no differences" in d.render()

    def test_identical_config_reruns_diff_empty(self):
        _, a = observed_result()
        _, b = observed_result()
        d = runrecord.diff(a.to_run_record(args=(3,)),
                           b.to_run_record(args=(3,)))
        assert d.ok and d.empty

    def test_value_change_is_regression(self):
        program, result = observed_result()
        doc = result.to_run_record(program=program, args=(3,))
        bad = json.loads(runrecord.canonical_json(doc))
        bad["result"]["value"] = 999
        d = runrecord.diff(doc, bad)
        assert not d.ok
        assert any("value" in r for r in d.regressions)

    def test_slower_time_is_regression_faster_is_improvement(self):
        program, result = observed_result()
        doc = result.to_run_record(program=program, args=(3,))
        slow = json.loads(runrecord.canonical_json(doc))
        slow["result"]["time_us"] = doc["result"]["time_us"] * 1.5
        assert not runrecord.diff(doc, slow).ok
        assert runrecord.diff(slow, doc).improvements

    def test_config_change_downgrades_to_notes(self):
        program, a = observed_result(pes=2)
        config = SimConfig(machine=MachineConfig(num_pes=4), obs=FULL_OBS)
        b = program.run((3,), backend="sim", config=config)
        d = runrecord.diff(a.to_run_record(program=program, args=(3,)),
                           b.to_run_record(program=program, args=(3,)))
        assert d.ok, d.regressions
        assert any("config changed" in n for n in d.notes)

    def test_wall_time_never_gates(self):
        program, result = observed_result()
        doc = result.to_run_record(program=program, args=(3,))
        a = json.loads(runrecord.canonical_json(doc))
        b = json.loads(runrecord.canonical_json(doc))
        a["result"]["wall_time_s"] = 1.0
        b["result"]["wall_time_s"] = 10.0
        d = runrecord.diff(a, b)
        assert d.ok
        assert any("host-dependent" in n for n in d.notes)

    def test_metric_row_changes_are_notes(self):
        program, result = observed_result()
        doc = result.to_run_record(program=program, args=(3,))
        other = json.loads(runrecord.canonical_json(doc))
        other["metrics"][0]["value"] = 10_000
        d = runrecord.diff(doc, other)
        assert d.ok
        assert any("metric " in n for n in d.notes)


class TestSemanticDiff:
    """``diff(semantic=True)``: the checkpoint/resume parity gate."""

    def _pair(self, pes_a=2, pes_b=2):
        program, a = observed_result(pes=pes_a)
        config = SimConfig(machine=MachineConfig(num_pes=pes_b),
                           obs=FULL_OBS)
        b = program.run((3,), backend="sim", config=config)
        return (a.to_run_record(program=program, args=(3,)),
                b.to_run_record(program=program, args=(3,)))

    def test_same_width_rerun_gates_clean(self):
        a, b = self._pair()
        d = runrecord.diff(a, b, semantic=True)
        assert d.ok, d.regressions
        assert any("semantic" in n for n in d.notes)

    def test_value_gates_even_across_config_change(self):
        # Without semantic=True a value change under a config change is
        # merely a note; the semantic gate hardens it to a regression.
        a, b = self._pair(pes_a=2, pes_b=4)
        bad = json.loads(runrecord.canonical_json(b))
        bad["result"]["value"] = 999
        assert runrecord.diff(a, bad).ok
        d = runrecord.diff(a, bad, semantic=True)
        assert not d.ok
        assert any("value" in r for r in d.regressions)

    def test_family_total_change_is_regression(self):
        a, b = self._pair()
        bad = json.loads(runrecord.canonical_json(b))
        for row in bad["metrics"]:
            if row["name"] == "array.element_writes":
                row["value"] += 1
        d = runrecord.diff(a, bad, semantic=True)
        assert not d.ok
        assert any("array.element_writes" in r for r in d.regressions)

    def test_width_scaled_family_is_informational_across_widths(self):
        # rf.subrange counts per-identity activations, which scale with
        # the partition width: exact at equal width, a note otherwise.
        a, b = self._pair(pes_a=2, pes_b=4)
        d = runrecord.diff(a, b, semantic=True)
        assert d.ok, d.regressions
        assert any("rf.subrange" in n and "width" in n for n in d.notes)

    def test_missing_metrics_side_is_regression(self):
        a, b = self._pair()
        bare = json.loads(runrecord.canonical_json(b))
        del bare["metrics"]
        d = runrecord.diff(a, bare, semantic=True)
        assert not d.ok


class TestDeterminism:
    def test_fast_path_record_matches_reference(self):
        """The run ledger must not distinguish the table-driven fast
        path from the reference interpreter: identical records modulo
        the fast_path knob itself."""
        docs = {}
        for fast in (True, False):
            program, result = observed_result(fast_path=fast)
            doc = result.to_run_record(program=program, args=(3,))
            doc["config"].pop("fast_path")
            docs[fast] = runrecord.canonical_json(doc)
        assert docs[True] == docs[False]

    def test_record_bytes_stable_across_runs(self):
        program, a = observed_result()
        _, b = observed_result()
        assert runrecord.canonical_json(
            a.to_run_record(program=program, args=(3,))) == \
            runrecord.canonical_json(
                b.to_run_record(program=program, args=(3,)))


class TestRender:
    def test_render_shows_the_shared_wait_table(self):
        program, result = observed_result()
        doc = result.to_run_record(program=program, args=(3,))
        text = runrecord.render_record(doc)
        assert "blocked causes (us per PE):" in text
        assert "critical path:" in text
        assert "what-if" in text
        assert "backend: sim x 2" in text
