"""Unit tests for the metrics registry (repro.obs.registry)."""

import json

import pytest

from repro.obs.registry import Histogram, MetricsRegistry


class TestCountersAndGauges:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        reg.inc("tokens", pe=0)
        reg.inc("tokens", 4, pe=0)
        reg.inc("tokens", pe=1)
        assert reg.value("tokens", pe=0) == 5
        assert reg.value("tokens", pe=1) == 1
        assert reg.total("tokens") == 6

    def test_label_values_stringified(self):
        reg = MetricsRegistry()
        reg.inc("m", pe=0)
        reg.inc("m", pe="0")
        assert reg.value("m", pe=0) == 2

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        reg.set_gauge("util", 0.25, unit="EU")
        reg.set_gauge("util", 0.5, unit="EU")
        assert reg.value("util", unit="EU") == 0.5

    def test_absent_metric_reads_zero(self):
        assert MetricsRegistry().value("nope", pe=3) == 0

    def test_select_filters_by_name(self):
        reg = MetricsRegistry()
        reg.inc("a", pe=0)
        reg.inc("a", pe=1)
        reg.inc("b")
        rows = reg.select("a")
        assert [r.labels_dict() for r in rows] == [{"pe": "0"}, {"pe": "1"}]


class TestHistogram:
    def test_summary_moments(self):
        hist = Histogram()
        for v in (1.0, 2.0, 6.0):
            hist.observe(v)
        s = hist.summary()
        assert s["count"] == 3
        assert s["sum"] == pytest.approx(9.0)
        assert s["min"] == 1.0
        assert s["max"] == 6.0
        assert s["mean"] == pytest.approx(3.0)

    def test_empty_summary_is_finite(self):
        s = Histogram().summary()
        assert s["count"] == 0 and s["min"] == 0.0 and s["max"] == 0.0

    def test_registry_observe(self):
        reg = MetricsRegistry()
        reg.observe("wait", 0.5, worker=0)
        reg.observe("wait", 1.5, worker=0)
        (row,) = reg.select("wait")
        assert row.kind == "histogram"
        assert row.value["count"] == 2


class TestMerge:
    def test_counters_add_gauges_overwrite_hists_accumulate(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 2, pe=0)
        b.inc("c", 3, pe=0)
        a.set_gauge("g", 1.0)
        b.set_gauge("g", 9.0)
        a.observe("h", 1.0)
        b.observe("h", 3.0)
        a.merge(b)
        assert a.value("c", pe=0) == 5
        assert a.value("g") == 9.0
        (row,) = a.select("h")
        assert row.value["count"] == 2
        assert row.value["sum"] == pytest.approx(4.0)


class TestDumps:
    def _populated(self):
        reg = MetricsRegistry()
        reg.inc("z.counter", 7, pe=1, unit="EU")
        reg.inc("a.counter", 1)
        reg.set_gauge("m.gauge", 0.5, pe=0)
        reg.observe("h.hist", 2.0)
        return reg

    def test_rows_sorted_by_kind_name_labels(self):
        rows = self._populated().rows()
        keys = [(r.kind, r.name, r.labels) for r in rows]
        assert keys == sorted(keys)

    def test_jsonl_byte_stable_and_parseable(self):
        a, b = self._populated(), self._populated()
        assert a.to_jsonl() == b.to_jsonl()
        for line in a.to_jsonl().splitlines():
            obj = json.loads(line)
            assert set(obj) == {"kind", "name", "labels", "value"}

    def test_csv_header_and_labels(self):
        text = self._populated().to_csv()
        lines = text.splitlines()
        assert lines[0] == "kind,name,labels,value"
        assert any("pe=1;unit=EU" in line for line in lines)
