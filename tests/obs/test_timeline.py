"""Unit tests for busy-interval timelines, plus the key integration
property: utilization *derived* from the recorded spans matches the
simulator's busy-time accumulators."""

import pytest

from repro.obs.timeline import TimelineStore, UnitTimeline
from repro.sim.stats import UNITS


class TestUnitTimeline:
    def test_accumulates_and_orders(self):
        line = UnitTimeline()
        line.add(0.0, 1.0)
        line.add(2.0, 4.0)
        assert line.busy_us == pytest.approx(3.0)
        assert [(s.start, s.end) for s in line.spans()] == [(0, 1), (2, 4)]

    def test_adjacent_spans_coalesce(self):
        line = UnitTimeline()
        line.add(0.0, 1.0)
        line.add(1.0, 2.0)  # back-to-back service: same busy interval
        assert len(line) == 1
        assert line.spans()[0].end == 2.0
        assert line.busy_us == pytest.approx(2.0)

    def test_empty_spans_ignored(self):
        line = UnitTimeline()
        line.add(5.0, 5.0)
        line.add(5.0, 4.0)
        assert len(line) == 0 and line.busy_us == 0.0

    def test_busy_between_clips_to_window(self):
        line = UnitTimeline()
        line.add(0.0, 10.0)
        line.add(20.0, 30.0)
        assert line.busy_between(5.0, 25.0) == pytest.approx(10.0)
        assert line.busy_between(11.0, 19.0) == 0.0


class TestEdgeCases:
    """Malformed and overflowing input: the store must stay consistent
    (busy time exact, spans ordered, loss visible) no matter what."""

    def test_zero_length_span_between_real_spans(self):
        line = UnitTimeline()
        line.add(0.0, 1.0)
        line.add(1.5, 1.5)     # zero-length: no span, no busy time
        line.add(2.0, 3.0)
        assert [(s.start, s.end) for s in line.spans()] == [(0, 1), (2, 3)]
        assert line.busy_us == pytest.approx(2.0)

    def test_out_of_order_end_clamped_to_frontier(self):
        # A span starting before the previous end (out-of-order end
        # event) is clamped: the overlap is never double-counted.
        line = UnitTimeline()
        line.add(0.0, 5.0)
        line.add(3.0, 8.0)     # overlaps [3, 5]
        assert len(line) == 1
        assert line.spans()[0].end == 8.0
        assert line.busy_us == pytest.approx(8.0)

    def test_out_of_order_end_fully_contained(self):
        line = UnitTimeline()
        line.add(0.0, 5.0)
        line.add(1.0, 4.0)     # entirely inside the frontier: no-op
        assert len(line) == 1
        assert line.busy_us == pytest.approx(5.0)

    def test_overflow_counts_drops_and_keeps_busy_exact(self):
        line = UnitTimeline(limit=2)
        line.add(0.0, 1.0)
        line.add(2.0, 3.0)
        line.add(4.0, 5.0)     # over the limit: dropped from the list
        line.add(6.0, 7.0)
        assert len(line) == 2
        assert line.truncated and line.dropped == 2
        assert line.busy_us == pytest.approx(4.0)   # still exact
        # Derived busy over the retained window undercounts — the
        # truncated flag is the tell.
        assert line.busy_between(0.0, 10.0) == pytest.approx(2.0)

    def test_coalescing_across_overflow_truncation(self):
        # A span adjacent to the last *retained* span keeps coalescing
        # into it even once the limit is hit: no drop, busy stays exact.
        line = UnitTimeline(limit=1)
        line.add(0.0, 1.0)
        line.add(1.0, 2.0)     # coalesces, limit not consulted
        line.add(2.0, 3.0)
        assert len(line) == 1
        assert line.spans()[0].end == 3.0
        assert line.busy_us == pytest.approx(3.0)
        assert not line.truncated
        line.add(5.0, 6.0)     # distinct: this one drops
        assert line.truncated and line.dropped == 1
        assert line.busy_us == pytest.approx(4.0)
        line.add(6.0, 7.0)     # adjacent to the *dropped* span, but the
        # retained frontier is 3.0 — recorded as a drop, not a bogus
        # coalesce that would stretch the retained span over idle time.
        assert line.dropped == 2
        assert line.spans()[0].end == 3.0
        assert line.busy_us == pytest.approx(5.0)

    def test_gaps_complement_spans(self):
        line = UnitTimeline()
        line.add(1.0, 2.0)
        line.add(4.0, 6.0)
        gaps = [(g.start, g.end) for g in line.gaps(0.0, 8.0)]
        assert gaps == [(0.0, 1.0), (2.0, 4.0), (6.0, 8.0)]
        total = line.busy_between(0.0, 8.0) + sum(e - s for s, e in gaps)
        assert total == pytest.approx(8.0)

    def test_gaps_with_span_crossing_window_end(self):
        line = UnitTimeline()
        line.add(3.0, 12.0)    # runs past the window
        gaps = [(g.start, g.end) for g in line.gaps(0.0, 10.0)]
        assert gaps == [(0.0, 3.0)]

    def test_gaps_of_empty_timeline_is_whole_window(self):
        line = UnitTimeline()
        assert [(g.start, g.end) for g in line.gaps(2.0, 5.0)] == [(2.0, 5.0)]

    def test_store_propagates_span_limit(self):
        store = TimelineStore(num_pes=1, span_limit=1)
        store.span(0, "EU", 0.0, 1.0)
        store.span(0, "EU", 2.0, 3.0)
        assert store.truncated and store.dropped == 1
        assert store.busy("EU") == pytest.approx(2.0)


class TestTimelineStore:
    def test_busy_and_utilization(self):
        store = TimelineStore(num_pes=2)
        store.span(0, "EU", 0.0, 4.0)
        store.span(1, "EU", 0.0, 2.0)
        store.span(0, "MU", 1.0, 2.0)
        assert store.busy("EU") == pytest.approx(6.0)
        assert store.busy("EU", pe=1) == pytest.approx(2.0)
        # averaged over PEs, per-PE, and a unit with no spans at all
        assert store.utilization("EU", 10.0) == pytest.approx(0.3)
        assert store.utilization("EU", 10.0, pe=0) == pytest.approx(0.4)
        assert store.utilization("AM", 10.0) == 0.0

    def test_items_deterministic(self):
        store = TimelineStore(num_pes=2)
        store.span(1, "MU", 0.0, 1.0)
        store.span(0, "EU", 0.0, 1.0)
        store.span(0, "AM", 0.0, 1.0)
        assert [(pe, u) for pe, u, _ in store.items()] == [
            (0, "AM"), (0, "EU"), (1, "MU")]


class TestDerivationMatchesAccumulators:
    def test_derived_utilization_matches_stats(self, observed_run):
        """The Figure 8/9 acceptance property: timeline-derived numbers
        agree with the busy accumulators within 0.1% relative."""
        _, result = observed_run
        stats = result.stats
        assert stats.timelines is not None
        for unit in UNITS:
            for pe in (None, 0, 1):
                derived = stats.timeline_utilization(unit, pe=pe)
                ref = stats.utilization(unit, pe=pe)
                assert derived == pytest.approx(ref, rel=1e-3, abs=1e-12)

    def test_spans_nonoverlapping_per_unit(self, observed_run):
        _, result = observed_run
        for _pe, _unit, line in result.stats.timelines.items():
            spans = line.spans()
            for a, b in zip(spans, spans[1:]):
                assert a.end <= b.start + 1e-9

    def test_fallback_without_timelines(self):
        from repro.sim.stats import PEStats, RunStats

        pe = PEStats()
        pe.add_busy("EU", 5.0)
        stats = RunStats(num_pes=1, finish_time_us=10.0, pe_stats=[pe])
        assert stats.timeline_utilization("EU") == pytest.approx(0.5)
