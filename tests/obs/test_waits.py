"""Wait-state attribution and the critical-path profiler.

The acceptance properties of PR 3: per-PE busy + wait spans account for
(at least) 99% of simulated time, and the extracted critical path's
total length equals the run's makespan within 1%.  Both actually hold
exactly by construction; the tests assert the looser contract plus the
tight one so a future refactor that only *approximately* tiles time
still fails loudly.
"""

from __future__ import annotations

import pytest

from repro.obs.critpath import (
    IDLE,
    critical_path,
    pe_wait_breakdown,
    pe_wait_intervals,
    sp_names,
)
from repro.obs.profile import Profile
from repro.obs.waits import RUN, WAIT_CATEGORIES, SpRecord, WaitStore


class TestSpRecord:
    def test_lifecycle_alternates_run_and_wait(self):
        rec = SpRecord(uid=1, name="f", pe=0, created_at=0.0, parent=None)
        rec.run_begin(2.0)          # sched-queue 0..2
        rec.block(5.0)              # run 2..5
        rec.wake(9.0, "token-wait", resolver=7)
        rec.run_begin(9.0)
        rec.end(11.0)               # run 9..11
        assert rec.segments == [
            (0.0, 2.0, "sched-queue", None),
            (2.0, 5.0, RUN, None),
            (5.0, 9.0, "token-wait", 7),
            (9.0, 11.0, RUN, None),
        ]
        assert rec.run_us() == pytest.approx(5.0)
        assert rec.wait_us() == {"sched-queue": 2.0, "token-wait": 4.0}

    def test_zero_length_segments_dropped(self):
        rec = SpRecord(uid=1, name="f", pe=0, created_at=3.0, parent=None)
        rec.run_begin(3.0)          # zero-length sched wait: dropped
        rec.block(3.0)              # zero-length run: dropped
        rec.wake(6.0, "istructure-defer", resolver=None)
        rec.run_begin(6.0)
        rec.end(6.0)
        assert rec.segments == [(3.0, 6.0, "istructure-defer", None)]

    def test_wake_clamps_out_of_order_time(self):
        # A wake timestamped before the block must not create a
        # negative-length segment.
        rec = SpRecord(uid=1, name="f", pe=0, created_at=0.0, parent=None)
        rec.run_begin(0.0)
        rec.block(5.0)
        rec.wake(4.0, "net-queue", resolver=None)
        rec.run_begin(8.0)
        rec.end(9.0)
        for s, e, _, _ in rec.segments:
            assert e >= s

    def test_adjacent_same_cause_waits_coalesce(self):
        rec = SpRecord(uid=1, name="f", pe=0, created_at=0.0, parent=None)
        rec.run_begin(0.0)
        rec.block(1.0)
        rec.wake(2.0, "token-wait", resolver=4)
        # Immediately re-blocked on the same producer, no run between.
        rec.block(2.0)
        rec.wake(3.0, "token-wait", resolver=4)
        rec.run_begin(3.0)
        rec.end(4.0)
        kinds = [(k, r) for _, _, k, r in rec.segments]
        assert kinds.count(("token-wait", 4)) == 1
        assert rec.wait_us()["token-wait"] == pytest.approx(2.0)


class TestWaitStore:
    def test_pe_stalls_become_remote_read_spans(self):
        store = WaitStore()
        store.pe_stall_begin(0, 1.0)
        store.pe_stall_end(0, 4.0)
        store.pe_stall_begin(0, 4.0)   # zero-length stall: dropped
        store.pe_stall_end(0, 4.0)
        assert store.pe_wait_spans(0) == [(1.0, 4.0, "remote-read")]
        assert store.pe_wait_spans(1) == []

    def test_final_sp_prefers_result_producer(self):
        store = WaitStore()
        store.sp_create(0, 1, 0.0, None, "main")
        store.sp_create(0, 2, 0.0, 1, "main.for_i")
        store.sp_end(1, 5.0)
        store.sp_end(2, 9.0)
        assert store.final_sp() == 2       # last to end
        store.result(9.0, 1)
        assert store.final_sp() == 1       # explicit producer wins

    def test_hooks_ignore_unknown_uids(self):
        store = WaitStore()
        store.sp_run_begin(42, 1.0)
        store.sp_block(42, 2.0)
        store.sp_wake(42, 3.0, "token-wait")
        store.sp_end(42, 4.0)
        assert store.records() == []


class TestSimulatedRun:
    """Properties of a real 4-PE fill-and-sum run (module fixture)."""

    def test_waits_recorded(self, waits_run):
        _, result = waits_run
        waits = result.stats.waits
        assert waits is not None
        recs = waits.records()
        assert len(recs) > 4                       # main + loop SPs
        cats = {k for r in recs for _, _, k, _ in r.segments if k != RUN}
        assert "token-wait" in cats
        assert cats <= set(WAIT_CATEGORIES)

    def test_segments_well_formed(self, waits_run):
        _, result = waits_run
        finish = result.stats.finish_time_us
        for rec in result.stats.waits.records():
            prev_end = rec.created_at
            for s, e, kind, _ in rec.segments:
                assert e > s
                assert s >= prev_end - 1e-9        # ordered, no overlap
                # Trailing drain events may run slightly past the result's
                # arrival, but must start inside the run.
                assert 0.0 <= s <= finish + 1e-9
                assert kind == RUN or kind in WAIT_CATEGORIES
                prev_end = e

    def test_busy_plus_waits_accounts_for_makespan(self, waits_run):
        """Acceptance: per-PE busy + wait spans cover >= 99% of the
        simulated time (they tile it exactly)."""
        _, result = waits_run
        profile = Profile.from_stats(result.stats)
        for pe in range(profile.num_pes):
            frac = profile.accounted_fraction(pe)
            assert frac >= 0.99
            assert frac == pytest.approx(1.0, abs=1e-6)

    def test_pe_wait_intervals_tile_the_gaps(self, waits_run):
        _, result = waits_run
        stats = result.stats
        finish = stats.finish_time_us
        for pe in range(stats.num_pes):
            intervals = pe_wait_intervals(stats.waits, stats.timelines,
                                          pe, finish)
            prev = 0.0
            for s, e, cat in intervals:
                assert e > s
                assert s >= prev - 1e-9
                assert cat in WAIT_CATEGORIES or cat == IDLE
                prev = e
            covered = sum(e - s for s, e, _ in intervals)
            busy = stats.timelines.line(pe, "EU").busy_between(0.0, finish)
            assert covered + busy == pytest.approx(finish, rel=1e-9)

    def test_breakdown_matches_intervals(self, waits_run):
        _, result = waits_run
        stats = result.stats
        rows = pe_wait_breakdown(stats.waits, stats.timelines,
                                 stats.num_pes, stats.finish_time_us)
        assert len(rows) == stats.num_pes
        for pe, row in enumerate(rows):
            intervals = pe_wait_intervals(stats.waits, stats.timelines,
                                          pe, stats.finish_time_us)
            for cat in list(row):
                ref = sum(e - s for s, e, c in intervals if c == cat)
                assert row[cat] == pytest.approx(ref, rel=1e-9)

    def test_critical_path_equals_makespan(self, waits_run):
        """Acceptance: the critical path's total length equals the run's
        makespan within 1% (it equals it exactly)."""
        _, result = waits_run
        makespan = result.stats.finish_time_us
        path = critical_path(result.stats.waits, makespan)
        assert path.total_us == pytest.approx(makespan, rel=0.01)
        assert path.total_us == pytest.approx(makespan, rel=1e-6)
        # The steps tile [0, makespan] back to front.
        assert path.steps[0].start == pytest.approx(0.0, abs=1e-9)
        assert path.steps[-1].end == pytest.approx(makespan, rel=1e-9)
        for a, b in zip(path.steps, path.steps[1:]):
            assert b.start == pytest.approx(a.end, rel=1e-9, abs=1e-9)

    def test_critical_path_fully_attributed(self, waits_run):
        _, result = waits_run
        path = critical_path(result.stats.waits,
                             result.stats.finish_time_us)
        contrib = path.contributions()
        assert contrib.get("unattributed", 0.0) == pytest.approx(0.0)
        assert sum(contrib.values()) == pytest.approx(path.total_us,
                                                      rel=1e-9)
        assert contrib.get(RUN, 0.0) > 0.0

    def test_what_if_estimates_are_sane(self, waits_run):
        _, result = waits_run
        path = critical_path(result.stats.waits,
                             result.stats.finish_time_us)
        for cat, predicted, speedup in path.what_if():
            assert cat in WAIT_CATEGORIES
            assert 0.0 < predicted <= path.total_us + 1e-9
            assert speedup >= 1.0 - 1e-9
            assert speedup == pytest.approx(path.total_us / predicted)

    def test_top_sps_named(self, waits_run):
        _, result = waits_run
        stats = result.stats
        path = critical_path(stats.waits, stats.finish_time_us)
        top = path.top_sps(3, sp_names(stats.waits))
        assert 0 < len(top) <= 3
        # Sorted by critical-path share, named after real frames.
        path_us = [us for _, us, _ in top]
        assert path_us == sorted(path_us, reverse=True)
        for label, us, share in top:
            assert label
            assert us > 0.0
            assert 0.0 < share <= 1.0

    def test_wait_metric_family_in_registry(self, waits_run):
        """metrics + waits => per-(pe, cause) wait.us gauges, the family
        the parallel backend's telemetry shares."""
        _, result = waits_run
        registry = result.stats.registry
        rows = registry.select("wait.us")
        assert rows
        for row in rows:
            labels = row.labels_dict()
            assert labels["cause"] in WAIT_CATEGORIES + (IDLE,)
            assert row.value >= 0.0

    def test_profile_render(self, waits_run):
        _, result = waits_run
        text = Profile.from_stats(result.stats).render(top=5)
        assert "blocked-time breakdown" in text
        assert "critical path" in text
        assert "what-if" in text
        for cat in WAIT_CATEGORIES:
            assert cat in text

    def test_profile_requires_waits(self, observed_run):
        _, result = observed_run       # metrics+timelines, no waits
        with pytest.raises(ValueError):
            Profile.from_stats(result.stats)


class TestZeroCostWhenOff:
    def test_waits_off_by_default(self, observed_run):
        _, result = observed_run
        assert result.stats.waits is None
