"""Shared helpers for the observability tests: one small program, run on
the simulator with the full observability stack enabled."""

from __future__ import annotations

import pytest

from repro.api import compile_source
from repro.common.config import MachineConfig, ObsConfig, SimConfig
from repro.sim.machine import Machine

# The cross-backend fill-and-sum program: touches frames, loops, arrays
# and RF distribution, yet traces to ~100 events at n=3 on 2 PEs.
FILL_AND_SUM = """
function main(n) {
    A = matrix(n, n);
    for i = 1 to n { for j = 1 to n { A[i, j] = i * j; } }
    s = 0;
    for i = 1 to n {
        r = 0;
        for j = 1 to n { next r = r + A[i, j]; }
        next s = s + r;
    }
    return s;
}
"""


def run_observed(source: str = FILL_AND_SUM, args: tuple = (3,),
                 num_pes: int = 2, jitter_seed: int | None = None,
                 waits: bool = False):
    """Compile + run with metrics, timelines and tracing all on.

    Returns (machine, result); the machine exposes the tracer, the
    result's stats carry the timelines and the metrics registry.  With
    ``waits=True`` the wait-state recorder is on too and
    ``result.stats.waits`` holds the WaitStore.
    """
    program = compile_source(source)
    config = SimConfig(
        machine=MachineConfig(num_pes=num_pes),
        obs=ObsConfig(metrics=True, timelines=True, trace=True,
                      waits=waits),
        jitter_seed=jitter_seed,
    )
    machine = Machine(program.pods, config)
    result = machine.run(args)
    return machine, result


@pytest.fixture(scope="module")
def observed_run():
    return run_observed()


@pytest.fixture(scope="module")
def waits_run():
    """A 4-PE fill-and-sum run with wait-state attribution enabled."""
    return run_observed(args=(4,), num_pes=4, waits=True)
