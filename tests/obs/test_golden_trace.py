"""Golden-trace regression test.

The fixture ``golden_trace.txt`` pins the *stable* fields of every trace
event — ``seq pe unit kind sp`` — for the fill-and-sum program at n=3 on
2 PEs.  Times and detail strings are deliberately excluded (they move
with the timing model and with formatting), so the fixture only fails
when the scheduling behavior itself changes: different events, different
order, different placement.

If a deliberate change shifts the schedule, regenerate with::

    PYTHONPATH=src python tests/obs/test_golden_trace.py

and review the diff like any other golden-file update.
"""

from __future__ import annotations

import difflib
import os
import sys

from repro.obs.export import trace_golden

try:
    from tests.obs.conftest import run_observed
except ImportError:  # running as a script (fixture regeneration)
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", ".."))
    from tests.obs.conftest import run_observed

FIXTURE = os.path.join(os.path.dirname(__file__), "golden_trace.txt")


def current_golden() -> str:
    machine, result = run_observed()
    assert result.value == 36  # sum of i*j over 3x3
    return trace_golden(machine.tracer.events) + "\n"


def test_trace_matches_golden_fixture():
    with open(FIXTURE) as fh:
        expected = fh.read()
    actual = current_golden()
    if actual != expected:
        diff = "".join(difflib.unified_diff(
            expected.splitlines(keepends=True),
            actual.splitlines(keepends=True),
            fromfile="golden_trace.txt (checked in)",
            tofile="current run",
        ))
        raise AssertionError(
            "trace diverged from the golden fixture (stable fields: "
            "seq pe unit kind sp).\nIf the scheduling change is "
            "intentional, regenerate with\n"
            "  PYTHONPATH=src python tests/obs/test_golden_trace.py\n\n"
            + diff)


def test_golden_lines_are_stable_fields_only():
    machine, _ = run_observed()
    for event in machine.tracer.events[:10]:
        parts = event.golden_line().split()
        assert len(parts) == 5
        assert parts[0] == str(event.seq)
        assert parts[1] == str(event.pe)


if __name__ == "__main__":  # regenerate the fixture
    text = current_golden()
    with open(FIXTURE, "w") as fh:
        fh.write(text)
    print(f"wrote {FIXTURE} ({len(text.splitlines())} lines)")
