"""Fast smoke test of the headline reproduction claims.

The full regeneration lives in benchmarks/; this reduced-scale version
keeps the reproduction story guarded by the plain test suite.
"""

import pytest

from repro.apps.simple_app import compile_simple


@pytest.fixture(scope="module")
def simple():
    return compile_simple()


@pytest.fixture(scope="module")
def points(simple):
    out = {}
    for n, pes in [(8, 1), (8, 4), (16, 1), (16, 4)]:
        out[(n, pes)] = simple.run_pods((n, 1), num_pes=pes)
    return out


class TestHeadlines:
    def test_figure8_eu_dominates(self, points):
        for point in points.values():
            util = point.stats.utilizations()
            assert util["EU"] == max(util.values())

    def test_figure9_utilization_trends(self, points):
        # Falls with PEs; larger problem busier on many PEs.
        assert (points[(16, 1)].stats.utilization("EU")
                > points[(16, 4)].stats.utilization("EU"))
        assert (points[(16, 4)].stats.utilization("EU")
                > points[(8, 4)].stats.utilization("EU"))

    def test_figure10_ordering(self, points):
        s8 = points[(8, 1)].finish_time_us / points[(8, 4)].finish_time_us
        s16 = points[(16, 1)].finish_time_us / points[(16, 4)].finish_time_us
        assert s16 > s8 > 1.0  # larger problems scale further

    def test_pods_beats_static_baseline(self, simple, points):
        static = simple.run_static((16, 1), num_pes=4)
        static1 = simple.run_static((16, 1), num_pes=1)
        pods_speedup = (points[(16, 1)].finish_time_us
                        / points[(16, 4)].finish_time_us)
        pr_speedup = static1.time_us / static.time_us
        assert pods_speedup > pr_speedup

    def test_sec534_direction(self, simple, points):
        seq = simple.run_sequential((16, 1))
        assert 1.0 < points[(16, 1)].finish_time_us / seq.time_us < 3.0

    def test_all_backends_one_answer(self, simple, points):
        seq = simple.run_sequential((8, 1)).value
        assert points[(8, 1)].value == pytest.approx(seq, rel=1e-12)
        assert points[(8, 4)].value == pytest.approx(seq, rel=1e-12)
