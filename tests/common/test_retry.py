"""Unit tests for the shared retry budget (:mod:`repro.common.retry`).

Moved alongside the implementation when :class:`RetryPolicy` was hoisted
out of ``repro.parallel.recovery``; the shim test pins the old import
path to the same object so existing call sites cannot silently fork.
"""

import pytest

from repro.common.config import ParallelConfig
from repro.common.retry import RetryPolicy


class TestRetryPolicy:
    def test_backoff_is_deterministic_in_seed(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        c = RetryPolicy(seed=8)
        seq_a = [a.backoff_s(w, k) for w in range(3) for k in (1, 2, 3)]
        seq_b = [b.backoff_s(w, k) for w in range(3) for k in (1, 2, 3)]
        assert seq_a == seq_b
        assert seq_a != [c.backoff_s(w, k) for w in range(3)
                         for k in (1, 2, 3)]

    def test_backoff_grows_and_caps(self):
        p = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                        backoff_max_s=0.4, jitter=0.0)
        assert p.backoff_s(0, 1) == pytest.approx(0.1)
        assert p.backoff_s(0, 2) == pytest.approx(0.2)
        assert p.backoff_s(0, 3) == pytest.approx(0.4)
        assert p.backoff_s(0, 9) == pytest.approx(0.4)  # capped
        with pytest.raises(ValueError):
            p.backoff_s(0, 0)

    def test_jitter_desynchronises_workers(self):
        p = RetryPolicy(jitter=0.5, seed=1)
        delays = {p.backoff_s(w, 1) for w in range(8)}
        assert len(delays) > 1, "jitter should differ across workers"

    def test_from_config(self):
        cfg = ParallelConfig(workers=2, max_retries_per_worker=5,
                             max_retries_total=11, retry_backoff_s=0.3,
                             retry_backoff_max_s=9.0, retry_jitter=0.1,
                             seed=42, recovery=False)
        p = RetryPolicy.from_config(cfg)
        assert (p.max_retries_per_worker, p.max_retries_total) == (5, 11)
        assert (p.backoff_base_s, p.backoff_max_s) == (0.3, 9.0)
        assert (p.jitter, p.seed, p.enabled) == (0.1, 42, False)

    def test_from_dist_config(self):
        from repro.common.config import DistConfig

        cfg = DistConfig(nodes=2, max_retries_per_worker=1,
                         max_retries_total=3, retry_backoff_s=0.2,
                         retry_backoff_max_s=1.5, retry_jitter=0.0, seed=9)
        p = RetryPolicy.from_config(cfg)
        assert (p.max_retries_per_worker, p.max_retries_total) == (1, 3)
        assert (p.backoff_base_s, p.backoff_max_s) == (0.2, 1.5)
        assert (p.jitter, p.seed, p.enabled) == (0.0, 9, True)

    def test_old_import_path_is_a_shim(self):
        from repro.parallel import recovery

        assert recovery.RetryPolicy is RetryPolicy


FILL = """
function main(n) {
    A = matrix(n, n);
    for i = 1 to n {
        for j = 1 to n { A[i, j] = 1.0 * i * j + 0.25; }
    }
    return A;
}
"""

# Shrunk timings so the budget-exhaustion runs finish in milliseconds.
FAST = dict(poll_interval_s=0.02, grace_s=0.2, retry_backoff_s=0.01,
            retry_backoff_max_s=0.05)


class TestBudgetEdges:
    """The corners of the shared budget the happy-path tests skip."""

    def test_zero_global_budget_fails_on_first_crash(self):
        # max_retries_total=0 is a legal "never retry anything" policy:
        # the very first crash must exhaust the global budget — a
        # structured error, zero respawn attempts, no hang.
        from repro.api import compile_source
        from repro.common.errors import ParallelExecutionError

        p = compile_source(FILL)
        cfg = ParallelConfig(workers=2, max_retries_total=0, **FAST)
        with pytest.raises(ParallelExecutionError) as exc:
            p.run_parallel((8,), config=cfg,
                           faults="kill:worker=1,on=iter,after=0")
        assert "recovery budget exhausted (0 retries)" in str(exc.value)
        assert exc.value.recovery.respawns == 0

    def test_global_budget_checked_before_per_worker(self):
        # Both budgets expire on the same attempt (total=1 and
        # per-worker=1, crash re-fires every generation): the global
        # check runs first, so the failure is reported as global
        # exhaustion and no takeover is ever scheduled for a run the
        # budget has already condemned.
        from repro.api import compile_source
        from repro.common.errors import ParallelExecutionError

        p = compile_source(FILL)
        cfg = ParallelConfig(workers=2, max_retries_per_worker=1,
                             max_retries_total=1, **FAST)
        with pytest.raises(ParallelExecutionError) as exc:
            p.run_parallel((8,), config=cfg, faults="kill:worker=1,gen=0")
        assert "recovery budget exhausted (1 retries)" in str(exc.value)
        kinds = [e.kind for e in exc.value.recovery.events]
        assert kinds.count("respawn") == 1
        assert "takeover" not in kinds

    def test_jitter_is_deterministic_at_the_budget_boundary(self):
        # The delays that matter most — the last in-budget respawn and
        # the takeover right past it — must replay exactly for the same
        # seed: recovery schedules are part of the reproducibility
        # contract, not best-effort.
        mk = lambda seed: RetryPolicy(max_retries_per_worker=3,
                                      jitter=0.5, seed=seed)
        a, b, c = mk(5), mk(5), mk(6)
        boundary = a.max_retries_per_worker
        for worker in range(4):
            for attempt in (boundary, boundary + 1):
                assert (a.backoff_s(worker, attempt)
                        == b.backoff_s(worker, attempt))
        assert any(a.backoff_s(w, boundary) != c.backoff_s(w, boundary)
                   for w in range(4))

    def test_backoff_cap_bounds_jittered_delay(self):
        # Jitter widens the capped base, never past (1 + jitter) of it:
        # the worst-case respawn delay stays computable from the config.
        p = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                        backoff_max_s=0.4, jitter=0.25, seed=3)
        for attempt in (1, 5, 30):
            d = p.backoff_s(0, attempt)
            assert d <= 0.4 * 1.25
            assert d >= min(0.4, 0.1 * 2.0 ** (attempt - 1))
