"""Unit tests for the shared retry budget (:mod:`repro.common.retry`).

Moved alongside the implementation when :class:`RetryPolicy` was hoisted
out of ``repro.parallel.recovery``; the shim test pins the old import
path to the same object so existing call sites cannot silently fork.
"""

import pytest

from repro.common.config import ParallelConfig
from repro.common.retry import RetryPolicy


class TestRetryPolicy:
    def test_backoff_is_deterministic_in_seed(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        c = RetryPolicy(seed=8)
        seq_a = [a.backoff_s(w, k) for w in range(3) for k in (1, 2, 3)]
        seq_b = [b.backoff_s(w, k) for w in range(3) for k in (1, 2, 3)]
        assert seq_a == seq_b
        assert seq_a != [c.backoff_s(w, k) for w in range(3)
                         for k in (1, 2, 3)]

    def test_backoff_grows_and_caps(self):
        p = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                        backoff_max_s=0.4, jitter=0.0)
        assert p.backoff_s(0, 1) == pytest.approx(0.1)
        assert p.backoff_s(0, 2) == pytest.approx(0.2)
        assert p.backoff_s(0, 3) == pytest.approx(0.4)
        assert p.backoff_s(0, 9) == pytest.approx(0.4)  # capped
        with pytest.raises(ValueError):
            p.backoff_s(0, 0)

    def test_jitter_desynchronises_workers(self):
        p = RetryPolicy(jitter=0.5, seed=1)
        delays = {p.backoff_s(w, 1) for w in range(8)}
        assert len(delays) > 1, "jitter should differ across workers"

    def test_from_config(self):
        cfg = ParallelConfig(workers=2, max_retries_per_worker=5,
                             max_retries_total=11, retry_backoff_s=0.3,
                             retry_backoff_max_s=9.0, retry_jitter=0.1,
                             seed=42, recovery=False)
        p = RetryPolicy.from_config(cfg)
        assert (p.max_retries_per_worker, p.max_retries_total) == (5, 11)
        assert (p.backoff_base_s, p.backoff_max_s) == (0.3, 9.0)
        assert (p.jitter, p.seed, p.enabled) == (0.1, 42, False)

    def test_from_dist_config(self):
        from repro.common.config import DistConfig

        cfg = DistConfig(nodes=2, max_retries_per_worker=1,
                         max_retries_total=3, retry_backoff_s=0.2,
                         retry_backoff_max_s=1.5, retry_jitter=0.0, seed=9)
        p = RetryPolicy.from_config(cfg)
        assert (p.max_retries_per_worker, p.max_retries_total) == (1, 3)
        assert (p.backoff_base_s, p.backoff_max_s) == (0.2, 1.5)
        assert (p.jitter, p.seed, p.enabled) == (0.0, 9, True)

    def test_old_import_path_is_a_shim(self):
        from repro.parallel import recovery

        assert recovery.RetryPolicy is RetryPolicy
