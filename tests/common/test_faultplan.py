"""The shared fault-plan grammar (clause syntax + env handling).

One dialect-neutral spec syntax (``action:key=value,...;...``) is parsed
by :mod:`repro.common.faultplan` and consumed by *both* chaos backends —
the real-parallel process faults (:mod:`repro.parallel.faults`) and the
simulated network faults (:mod:`repro.sim.netfaults`).  These tests pin
the grammar itself plus the guarantee that the two dialects stay
syntax-compatible and keep their environment variables distinct.
"""

import pytest

from repro.common import faultplan
from repro.dist.faults import DistFaultPlan, resolve_dist_plan
from repro.parallel.faults import Fault, FaultPlan, resolve_plan
from repro.sim.netfaults import SimFaultPlan, resolve_sim_plan


class TestSplitClauses:
    def test_single_clause(self):
        assert faultplan.split_clauses("kill:worker=1") == [
            ("kill", "worker=1")]

    def test_multiple_clauses(self):
        got = faultplan.split_clauses("drop:kind=page;dup:count=2")
        assert got == [("drop", "kind=page"), ("dup", "count=2")]

    def test_bare_action_has_empty_argstr(self):
        assert faultplan.split_clauses("dup") == [("dup", "")]

    def test_stray_semicolons_and_whitespace_dropped(self):
        got = faultplan.split_clauses(" ;drop:kind=page ; ; dup ;")
        assert got == [("drop", "kind=page"), ("dup", "")]


class TestParseClauseArgs:
    SCHEMA = {"worker": int, "seconds": float, "on": str}

    def test_coercions(self):
        got = faultplan.parse_clause_args(
            "worker=2,seconds=1.5,on=iter", self.SCHEMA)
        assert got == {"worker": 2, "seconds": 1.5, "on": "iter"}

    def test_empty_argstr(self):
        assert faultplan.parse_clause_args("", self.SCHEMA) == {}

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault key"):
            faultplan.parse_clause_args("bogus=1", self.SCHEMA)

    def test_missing_equals_rejected(self):
        with pytest.raises(ValueError, match="bad fault argument"):
            faultplan.parse_clause_args("worker", self.SCHEMA, "kill:worker")

    def test_bad_value_names_clause(self):
        with pytest.raises(ValueError, match="kill:worker=x"):
            faultplan.parse_clause_args("worker=x", self.SCHEMA,
                                        "kill:worker=x")


class TestEnvHandling:
    def test_distinct_variables(self):
        # One chaos soak must not poison the other backends' runs.
        names = {faultplan.PARALLEL_ENV_VAR, faultplan.SIM_ENV_VAR,
                 faultplan.DIST_ENV_VAR}
        assert len(names) == 3

    def test_spec_from_env(self, monkeypatch):
        monkeypatch.delenv(faultplan.SIM_ENV_VAR, raising=False)
        assert faultplan.spec_from_env(faultplan.SIM_ENV_VAR) is None
        monkeypatch.setenv(faultplan.SIM_ENV_VAR, "drop:count=1")
        assert faultplan.spec_from_env(faultplan.SIM_ENV_VAR) == \
            "drop:count=1"

    def test_parallel_resolve_reads_pods_faults(self, monkeypatch):
        monkeypatch.setenv(faultplan.PARALLEL_ENV_VAR, "kill:worker=1")
        monkeypatch.delenv(faultplan.SIM_ENV_VAR, raising=False)
        plan = resolve_plan(None)
        assert plan.faults == (Fault(action="kill", worker=1),)
        # The sim dialect does not see the parallel variable.
        assert not resolve_sim_plan(None)

    def test_sim_resolve_reads_pods_sim_faults(self, monkeypatch):
        monkeypatch.setenv(faultplan.SIM_ENV_VAR, "drop:kind=page")
        monkeypatch.delenv(faultplan.PARALLEL_ENV_VAR, raising=False)
        monkeypatch.delenv(faultplan.DIST_ENV_VAR, raising=False)
        plan = resolve_sim_plan(None)
        assert [f.action for f in plan.faults] == ["drop"]
        assert not resolve_plan(None)
        assert not resolve_dist_plan(None)

    def test_dist_resolve_reads_pods_dist_faults(self, monkeypatch):
        monkeypatch.setenv(faultplan.DIST_ENV_VAR,
                           "node-kill:node=1,on=iter")
        monkeypatch.delenv(faultplan.PARALLEL_ENV_VAR, raising=False)
        monkeypatch.delenv(faultplan.SIM_ENV_VAR, raising=False)
        plan = resolve_dist_plan(None)
        assert [f.action for f in plan.faults] == ["node-kill"]
        # The other dialects do not see the dist variable.
        assert not resolve_plan(None)
        assert not resolve_sim_plan(None)

    def test_dist_ignores_other_dialect_variables(self, monkeypatch):
        # A parallel kill soak and a sim drop soak in the environment
        # must not shadow (or break) a healthy distributed run: the
        # parallel vocabulary ('kill:worker=') does not even parse as
        # a dist clause, so shadowing would be a hard failure.
        monkeypatch.setenv(faultplan.PARALLEL_ENV_VAR, "kill:worker=1")
        monkeypatch.setenv(faultplan.SIM_ENV_VAR, "drop:kind=page")
        monkeypatch.delenv(faultplan.DIST_ENV_VAR, raising=False)
        assert not resolve_dist_plan(None)

    @pytest.mark.parametrize("var,resolve,clause", [
        ("PARALLEL_ENV_VAR", resolve_plan, "kill:bogus=1"),
        ("SIM_ENV_VAR", resolve_sim_plan, "drop:bogus=1"),
        ("DIST_ENV_VAR", resolve_dist_plan, "node-kill:bogus=1"),
    ])
    def test_env_error_names_clause_and_variable(self, monkeypatch,
                                                 var, resolve, clause):
        """A broken spec in any dialect's variable raises an error
        naming both the offending clause and the variable it came
        from, so a poisoned environment is diagnosable at a glance."""
        env_var = getattr(faultplan, var)
        monkeypatch.setenv(env_var, clause)
        with pytest.raises(ValueError) as excinfo:
            resolve(None)
        msg = str(excinfo.value)
        assert env_var in msg
        assert clause in msg

    @pytest.mark.parametrize("parse,clause", [
        (FaultPlan.parse, "explode:worker=1"),
        (SimFaultPlan.parse, "explode:kind=page"),
        (DistFaultPlan.parse, "explode:node=1"),
    ])
    def test_unknown_action_names_clause(self, parse, clause):
        with pytest.raises(ValueError, match="explode"):
            parse(clause)


class TestDialectsShareSyntax:
    """The same spec shapes parse on both sides (vocabulary differs)."""

    def test_all_accept_multi_clause_specs(self):
        par = FaultPlan.parse("kill:worker=1,after=3;hang:worker=0")
        sim = SimFaultPlan.parse("drop:kind=page,after=3;dup:src=0")
        dist = DistFaultPlan.parse(
            "drop:kind=data,count=2;node-kill:node=1,on=write")
        assert len(par.faults) == 2
        assert len(sim.faults) == 2
        assert len(dist.faults) == 2

    def test_all_reject_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown fault key"):
            FaultPlan.parse("kill:worker=1,kind=page")
        with pytest.raises(ValueError, match="unknown fault key"):
            SimFaultPlan.parse("drop:worker=1")
        with pytest.raises(ValueError, match="unknown fault key"):
            DistFaultPlan.parse("drop:worker=1")

    def test_empty_specs_mean_no_faults(self):
        for parse in (FaultPlan.parse, SimFaultPlan.parse,
                      DistFaultPlan.parse):
            assert not parse(None)
            assert not parse("  ")

# -- round-trip properties -----------------------------------------------
# The grammar must be an exact codec: parse -> format -> parse is the
# identity for any spec the schema admits, so plans can be echoed into
# logs, chaos reports and PODS_FAULTS-style environment variables and
# re-ingested without drift.

from hypothesis import given
from hypothesis import strategies as st

_ACTIONS = st.sampled_from(["kill", "hang", "drop", "dup", "reorder",
                            "pe-halt"])
_KEYS = ["worker", "after", "count", "seed", "gen", "kind", "pe"]
_SCHEMA = {k: int for k in _KEYS} | {"kind": str}
_VALUES = {
    "kind": st.sampled_from(["page", "token", "ack"]),
}


@st.composite
def _clauses(draw):
    action = draw(_ACTIONS)
    keys = draw(st.lists(st.sampled_from(_KEYS), unique=True, max_size=4))
    args = {k: draw(_VALUES.get(k, st.integers(0, 99))) for k in keys}
    return action, args


class TestRoundTrip:
    @given(clauses=st.lists(_clauses(), min_size=1, max_size=5))
    def test_parse_format_parse_identity(self, clauses):
        spec = faultplan.format_spec(clauses)
        reparsed = [
            (action, faultplan.parse_clause_args(argstr, _SCHEMA,
                                                 f"{action}:{argstr}"))
            for action, argstr in faultplan.split_clauses(spec)]
        assert reparsed == clauses
        # format is idempotent through a second cycle too
        assert faultplan.format_spec(reparsed) == spec

    @given(clauses=st.lists(_clauses(), min_size=1, max_size=3),
           junk=st.sampled_from(["bogus=1", "worker", "worker=x"]),
           pos=st.integers(0, 3))
    def test_junk_clause_is_named_in_the_error(self, clauses, junk, pos):
        """A bad clause anywhere in the spec raises a ValueError whose
        message pins the offending clause, never a neighbouring one."""
        pos = min(pos, len(clauses))
        parts = [faultplan.format_clause(a, kw) for a, kw in clauses]
        parts.insert(pos, f"kill:{junk}")
        spec = ";".join(parts)
        with pytest.raises(ValueError) as excinfo:
            for action, argstr in faultplan.split_clauses(spec):
                faultplan.parse_clause_args(argstr, _SCHEMA,
                                            f"{action}:{argstr}")
        msg = str(excinfo.value)
        assert junk.partition("=")[0] in msg

    def test_format_clause_bare_action(self):
        assert faultplan.format_clause("dup", {}) == "dup"
        assert faultplan.split_clauses("dup") == [("dup", "")]

    @given(clauses=st.lists(_clauses(), min_size=1, max_size=4))
    def test_round_trip_through_real_dialect(self, clauses):
        """Specs survive a trip through a real dialect parser: format a
        parallel-dialect plan, parse it with FaultPlan, and the parsed
        faults carry exactly the formatted qualifiers."""
        dialect = {"worker", "after", "gen"}
        plan_clauses = [
            ("kill", {"worker": args.get("worker", 0),
                      **{k: v for k, v in args.items() if k in dialect}})
            for _, args in clauses]
        spec = faultplan.format_spec(plan_clauses)
        plan = FaultPlan.parse(spec)
        assert len(plan.faults) == len(plan_clauses)
        for fault, (_, args) in zip(plan.faults, plan_clauses):
            for key, value in args.items():
                assert getattr(fault, key) == value
