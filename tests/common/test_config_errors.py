"""Tests for configuration validation and the error hierarchy."""

import pytest

from repro.common.config import MachineConfig, SimConfig
from repro.common.errors import (
    DeadlockError,
    LanguageError,
    LexError,
    ParseError,
    PodsError,
    RuntimeFault,
    SemanticError,
    SingleAssignmentViolation,
    SourceLocation,
)


class TestMachineConfig:
    def test_defaults_match_paper(self):
        mc = MachineConfig()
        assert mc.page_size == 32      # Section 4.1
        assert mc.token_batch == 20    # Section 5.1
        assert mc.avg_hops == 2.5
        assert mc.cache_enabled and mc.split_phase_reads

    @pytest.mark.parametrize("kwargs", [
        {"num_pes": 0}, {"page_size": 0}, {"token_batch": 0},
        {"function_placement": "nope"},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            MachineConfig(**kwargs)

    def test_with_pes_copies(self):
        mc = MachineConfig(page_size=16)
        mc2 = mc.with_pes(8)
        assert mc2.num_pes == 8 and mc2.page_size == 16
        assert mc.num_pes == 1  # original unchanged (frozen)

    def test_sim_config_with_pes(self):
        sc = SimConfig(machine=MachineConfig(cache_enabled=False))
        sc8 = sc.with_pes(8)
        assert sc8.machine.num_pes == 8
        assert not sc8.machine.cache_enabled


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(LexError, LanguageError)
        assert issubclass(ParseError, LanguageError)
        assert issubclass(SemanticError, LanguageError)
        assert issubclass(LanguageError, PodsError)
        assert issubclass(SingleAssignmentViolation, RuntimeFault)
        assert issubclass(DeadlockError, RuntimeFault)
        assert issubclass(RuntimeFault, PodsError)

    def test_language_error_prefixes_location(self):
        err = SemanticError("bad thing", SourceLocation(3, 7))
        assert str(err).startswith("3:7:")

    def test_source_location_equality(self):
        assert SourceLocation(1, 2) == SourceLocation(1, 2)
        assert SourceLocation(1, 2) != SourceLocation(2, 1)
        assert len({SourceLocation(1, 2), SourceLocation(1, 2)}) == 1

    def test_deadlock_error_lists_waiters(self):
        err = DeadlockError("stuck", [f"frame {i}" for i in range(25)])
        text = str(err)
        assert "frame 0" in text
        assert "and 5 more" in text

    def test_single_assignment_fields(self):
        err = SingleAssignmentViolation(4, 17)
        assert err.array_id == 4 and err.offset == 17
        assert "17" in str(err)
