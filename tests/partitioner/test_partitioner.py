"""Tests for the for-loop distribution algorithm (paper Section 4.2.4)."""

from repro.graph import build_graph, ir, validate_graph
from repro.lang.parser import parse
from repro.partitioner import partition, partition_none


def partitioned(src):
    g = build_graph(parse(src))
    report = partition(g)
    validate_graph(g)
    return g, report


PAPER_EXAMPLE = """
function main(n) {
    A = matrix(50, 10);
    for i = 1 to 50 {
        for j = 1 to 10 { A[i, j] = i * 10 + j; }
    }
    return A;
}
"""


class TestBasicDistribution:
    def test_outer_parallel_loop_distributed(self):
        g, report = partitioned(PAPER_EXAMPLE)
        i_loop = next(b for b in g.loop_blocks() if b.name.endswith("for_i"))
        j_loop = next(b for b in g.loop_blocks() if b.name.endswith("for_j"))
        assert i_loop.distributed
        assert i_loop.range_filter is not None
        assert not j_loop.distributed, "only one RF per nest"
        assert report.distributed == ["main.for_i"]

    def test_ld_operator_in_parent(self):
        g, _ = partitioned(PAPER_EXAMPLE)
        main = g.entry_block()
        invoke = next(i for i in main.body if isinstance(i, ir.InvokeItem))
        assert invoke.distributed, "L must become LD in the parent"

    def test_inner_invoke_stays_local(self):
        g, _ = partitioned(PAPER_EXAMPLE)
        i_loop = next(b for b in g.loop_blocks() if b.name.endswith("for_i"))
        invoke = next(i for i in i_loop.body if isinstance(i, ir.InvokeItem))
        assert not invoke.distributed

    def test_allocations_become_distributing(self):
        g, _ = partitioned(PAPER_EXAMPLE)
        allocs = [d for b in g.blocks.values() for d in b.defs.values()
                  if isinstance(d, ir.AllocDef)]
        assert allocs and all(a.distributed for a in allocs)

    def test_range_filter_dimension_zero_for_row_writes(self):
        g, _ = partitioned(PAPER_EXAMPLE)
        i_loop = next(b for b in g.loop_blocks() if b.name.endswith("for_i"))
        assert i_loop.range_filter.dim == 0
        assert i_loop.range_filter.fixed_vids == []


class TestLcdGuidedPlacement:
    SWEEP = """
    function main(n) {
        B = matrix(n, n);
        for j = 1 to n { B[1, j] = 1.0; }
        for i = 2 to n {
            for j = 1 to n { B[i, j] = B[i - 1, j] * 0.5; }
        }
        return B;
    }
    """

    def test_sweep_distributes_inner_level(self):
        # The paper's conduction pattern: LCD at i pushes the LD one
        # level down; the j-loop gets the RF (Section 4.2.3).
        g, report = partitioned(self.SWEEP)
        sweep_i = next(b for b in g.loop_blocks()
                       if b.name.endswith("for_i") and b.has_lcd)
        inner_j = next(b for b in g.loop_blocks()
                       if b.name == sweep_i.name + ".for_j")
        assert not sweep_i.distributed
        assert inner_j.distributed
        assert inner_j.range_filter is not None

    def test_inner_rf_has_fixed_leading_index(self):
        g, _ = partitioned(self.SWEEP)
        inner_j = next(b for b in g.loop_blocks()
                       if b.distributed and b.name.endswith("for_i.for_j"))
        rf = inner_j.range_filter
        assert rf.dim == 1
        assert len(rf.fixed_vids) == 1
        fixed = inner_j.defs[rf.fixed_vids[0]]
        assert isinstance(fixed, ir.ParamDef)  # the imported i

    def test_reduction_nest_stays_local(self):
        g, report = partitioned("""
        function main(n) {
            s = 0;
            for i = 1 to n { next s = s + i; }
            return s;
        }
        """)
        assert report.distributed == []
        assert "main.for_i" in report.local_lcd

    def test_matmul_distributes_i_only(self):
        g, report = partitioned("""
        function main(n) {
            A = matrix(n, n);
            B = matrix(n, n);
            C = matrix(n, n);
            for i = 1 to n { for j = 1 to n { A[i, j] = 1.0; } }
            for i = 1 to n { for j = 1 to n { B[i, j] = 2.0; } }
            for i = 1 to n {
                for j = 1 to n {
                    s = 0.0;
                    for k = 1 to n { next s = s + A[i, k] * B[k, j]; }
                    C[i, j] = s;
                }
            }
            return C;
        }
        """)
        # Three i-loops distributed; the k reduction never is.
        assert len(report.distributed) == 3
        assert all(name.endswith("for_i") for name in report.distributed)
        k_loop = next(b for b in g.loop_blocks() if b.name.endswith("for_k"))
        assert not k_loop.distributed


class TestUnfilterableLoops:
    def test_column_major_write_stays_local(self):
        # Write A[j, i] from the i-loop: i is in trailing position with a
        # leading subscript that varies below the loop -> no usable RF.
        g, report = partitioned("""
        function main(n) {
            A = matrix(n, n);
            for i = 1 to n {
                for j = 1 to n { A[j, i] = i + j; }
            }
            return A;
        }
        """)
        i_loop = next(b for b in g.loop_blocks()
                      if b.name == "main.for_i")
        assert not i_loop.distributed
        # The algorithm descends: the j-loop writes A[j, i] with j leading
        # -> j-loop is distributable on dimension 0.
        j_loop = next(b for b in g.loop_blocks() if b.name.endswith("for_j"))
        assert j_loop.distributed
        assert j_loop.range_filter.dim == 0

    def test_scatter_write_stays_local(self):
        g, report = partitioned("""
        function main(n) {
            A = array(n);
            B = array(n);
            for i = 1 to n { B[i] = n - i + 1; }
            for i = 1 to n { A[n - i + 1] = i; }
            return A;
        }
        """)
        scatter = [name for name in report.local_no_filter]
        assert len(scatter) == 1

    def test_loop_without_writes_stays_local(self):
        g, report = partitioned("""
        function main(n) {
            A = array(n);
            for i = 1 to n { A[i] = i; }
            s = 0;
            for i = 1 to n { next s = s + A[i]; }
            return s;
        }
        """)
        reduction = next(b for b in g.loop_blocks() if b.carried_names)
        assert not reduction.distributed


class TestConstantLeadingIndex:
    def test_write_with_constant_row(self):
        # Distributed j-loop writing A[1, j]: the fixed leading index is
        # the constant 1, materialized in the loop block.
        g, report = partitioned("""
        function main(n) {
            A = matrix(n, n);
            for j = 1 to n { A[1, j] = j; }
            return A;
        }
        """)
        j_loop = g.loop_blocks()[0]
        assert j_loop.distributed
        rf = j_loop.range_filter
        assert rf.dim == 1
        fixed = j_loop.defs[rf.fixed_vids[0]]
        assert isinstance(fixed, ir.ConstDef) and fixed.value == 1


class TestPartitionNone:
    def test_ablation_distributes_arrays_but_no_loops(self):
        g = build_graph(parse(PAPER_EXAMPLE))
        report = partition_none(g)
        assert report.distributed == []
        assert not any(b.distributed for b in g.loop_blocks())
        allocs = [d for b in g.blocks.values() for d in b.defs.values()
                  if isinstance(d, ir.AllocDef)]
        assert all(a.distributed for a in allocs)


class TestRfPlacement:
    SRC = """
    function main(n) {
        A = matrix(n, n);
        for i = 1 to n {
            for j = 1 to n { A[i, j] = i * 10 + j; }
        }
        return A;
    }
    """

    def test_inner_placement_pushes_ld_down(self):
        from repro.api import compile_source

        outer = compile_source(self.SRC)
        inner = compile_source(self.SRC, rf_placement="inner")
        assert outer.partition_report.distributed == ["main.for_i"]
        assert inner.partition_report.distributed == ["main.for_i.for_j"]

    def test_both_placements_compute_the_same(self):
        from repro.api import compile_source

        outer = compile_source(self.SRC)
        inner = compile_source(self.SRC, rf_placement="inner")
        a = outer.run_pods((8,), num_pes=4)
        b = inner.run_pods((8,), num_pes=4)
        assert a.value == b.value

    def test_inner_rf_depends_on_outer_index(self):
        from repro.api import compile_source

        inner = compile_source(self.SRC, rf_placement="inner")
        j_loop = next(b for b in inner.graph.loop_blocks()
                      if b.distributed)
        assert j_loop.range_filter.dim == 1
        assert len(j_loop.range_filter.fixed_vids) == 1

    def test_unknown_placement_rejected(self):
        from repro.common.errors import PartitionError
        from repro.graph import build_graph
        from repro.lang.parser import parse
        from repro.partitioner import partition

        g = build_graph(parse(self.SRC))
        import pytest as _pytest

        with _pytest.raises(PartitionError):
            partition(g, placement="sideways")


class TestAggressiveMode:
    WAVEFRONT = """
    function main(n) {
        A = matrix(n, n);
        A[1, 1] = 1.0;
        for j = 2 to n { A[1, j] = A[1, j - 1] + 1.0; }
        for i = 2 to n { A[i, 1] = A[i - 1, 1] + 1.0; }
        for i = 2 to n {
            for j = 2 to n {
                A[i, j] = 0.5 * A[i - 1, j] + 0.5 * A[i, j - 1];
            }
        }
        return A[n, n];
    }
    """

    def test_conservative_leaves_wavefront_local(self):
        from repro.api import compile_source

        program = compile_source(self.WAVEFRONT)
        assert program.partition_report.distributed == []

    def test_aggressive_distributes_lcd_loops(self):
        from repro.api import compile_source

        program = compile_source(self.WAVEFRONT, aggressive=True)
        assert program.partition_report.distributed != []

    def test_aggressive_results_identical(self):
        # The paper's point: LCD detection is a heuristic, not a
        # correctness requirement.
        from repro.api import compile_source

        plain = compile_source(self.WAVEFRONT)
        agg = compile_source(self.WAVEFRONT, aggressive=True)
        base = plain.run_pods((10,), num_pes=1).value
        for pes in (2, 5):
            got = agg.run_pods((10,), num_pes=pes).value
            assert abs(got - base) < 1e-12

    def test_aggressive_never_distributes_reductions(self):
        # Carried scalars cannot merge across PEs: even aggressive mode
        # must keep them local.
        from repro.api import compile_source

        program = compile_source("""
        function main(n) {
            s = 0;
            for i = 1 to n { next s = s + i; }
            return s;
        }
        """, aggressive=True)
        assert program.partition_report.distributed == []
        assert program.run_pods((50,), num_pes=4).value == 1275
