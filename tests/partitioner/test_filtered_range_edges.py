"""Range-Filter edge cases: descending loops and empty responsibility.

The real-parallel workers feed ``filtered_range`` results straight into
their loop bounds, so the empty-range encodings (immediately-false pairs
for each direction) and the descending clamp are correctness-critical —
a wrong pair silently double-executes or skips iterations.
"""

from repro.runtime.arrays import ArrayHeader


class TestEmptyResponsibility:
    def test_ascending_empty_pair_is_immediately_false(self):
        # Only 2 rows for 4 PEs: the row starts land on PEs 0 and 2, so
        # PEs 1 and 3 own none.
        h = ArrayHeader(1, (2, 256), 32, 4)
        for pe in (1, 3):
            first, last = h.filtered_range(pe, 1, 2)
            assert (first, last) == (1, 0)
            assert first > last  # an ascending loop runs zero times

    def test_descending_empty_pair_is_immediately_false(self):
        h = ArrayHeader(1, (2, 256), 32, 4)
        for pe in (1, 3):
            first, last = h.filtered_range(pe, 2, 1, descending=True)
            assert (first, last) == (0, 1)
            assert first < last  # a downto loop runs zero times

    def test_disjoint_bounds_empty_both_directions(self):
        h = ArrayHeader(1, (6, 256), 32, 4)
        # PE0 owns rows 1..2; the loop never visits them.
        first, last = h.filtered_range(0, 4, 6)
        assert first > last
        first, last = h.filtered_range(0, 6, 4, descending=True)
        assert first < last

    def test_inner_dim_empty_responsibility(self):
        # With the leading index fixed, an inner filter can be empty on
        # PEs whose segment the pinned row never enters.
        h = ArrayHeader(1, (4, 4), 1, 4)
        hits = 0
        for k in (1, 2, 3, 4):
            for pe in range(4):
                first, last = h.filtered_range(pe, 1, 4, fixed=(k,), dim=1)
                if first > last:
                    assert (first, last) == (1, 0)
                else:
                    hits += last - first + 1
        assert hits == 16  # non-empty filters cover every (k, j) once


class TestDescendingClamp:
    def test_descending_ranges_partition_the_loop(self):
        h = ArrayHeader(1, (8, 256), 32, 4)
        seen = []
        for pe in range(4):
            first, last = h.filtered_range(pe, 8, 1, descending=True)
            i = first
            while i >= last:
                seen.append(i)
                i -= 1
        assert sorted(seen) == list(range(1, 9))

    def test_descending_respects_narrow_bounds(self):
        h = ArrayHeader(1, (8, 256), 32, 4)
        # PE1 is responsible for rows 3..4; loop runs 4 downto 2.
        assert h.responsible_rows(1) == (3, 4)
        assert h.filtered_range(1, 4, 2, descending=True) == (4, 3)
        # Loop 3 downto 3 intersects only row 3.
        assert h.filtered_range(1, 3, 3, descending=True) == (3, 3)

    def test_single_pe_descending_is_identity(self):
        h = ArrayHeader(1, (8, 8), 32, 1)
        assert h.filtered_range(0, 8, 1, descending=True) == (8, 1)
        assert h.filtered_range(0, 5, 2, descending=True) == (5, 2)
