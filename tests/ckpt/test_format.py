"""Unit tests for the ``pods-ckpt/v1`` snapshot format.

Pins the properties the durability layer rests on: presence bitmaps
round-trip, the canonical bytes (and therefore the content address) are
deterministic, invalid documents are refused at both the build and the
restore boundary, pacing is exact, and a restore re-addresses arrays by
allocation ordinal regardless of the width that wrote them.
"""

import json
import os

import pytest

from repro.ckpt.format import (LATEST, CheckpointError, CkptRestore,
                               CkptSpec, CkptWriter, array_entry,
                               bitmap_hex, bitmap_offsets,
                               build_checkpoint, canonical_json, ckpt_id,
                               load, program_section, save, validate)


class TestBitmap:
    def test_round_trip(self):
        offsets = {0, 1, 7, 8, 63, 64, 99}
        assert bitmap_offsets(bitmap_hex(100, offsets)) == offsets

    def test_empty(self):
        assert bitmap_offsets(bitmap_hex(16, ())) == set()

    def test_out_of_range_offset_refused(self):
        with pytest.raises(CheckpointError, match="outside"):
            bitmap_hex(8, [8])


class TestArrayEntry:
    def test_pages_and_bitmap_agree(self):
        entry = array_entry(1, (4, 4), page_size=4,
                            elements={0: 1.5, 5: 2.5, 15: 3.0})
        assert bitmap_offsets(entry["bitmap"]) == {0, 5, 15}
        assert entry["pages"] == {"0": [[0, 1.5]], "1": [[5, 2.5]],
                                  "3": [[15, 3.0]]}

    def test_non_scalar_element_refused(self):
        with pytest.raises(CheckpointError, match="cannot checkpoint"):
            array_entry(1, (2,), 2, {0: [1, 2]})


def _doc(**over):
    entry = array_entry(1, (2, 2), 2, {0: 1.0, 3: 4.0})
    doc = build_checkpoint(
        [entry], [{"identity": 0, "complete": True}], epoch=0,
        fingerprint={"backend": "sim", "parallelism": 2},
        program=program_section("function main() { return 1; }"),
        args=(8,))
    doc.update(over)
    return doc


class TestCanonicalBytes:
    def test_id_is_deterministic(self):
        assert ckpt_id(_doc()) == ckpt_id(_doc())

    def test_id_tracks_content(self):
        assert ckpt_id(_doc()) != ckpt_id(_doc(epoch=1))

    def test_canonical_json_is_key_order_independent(self):
        doc = _doc()
        shuffled = json.loads(json.dumps(doc))
        shuffled = dict(reversed(list(shuffled.items())))
        assert canonical_json(doc) == canonical_json(shuffled)


class TestValidate:
    def test_good_doc_is_clean(self):
        assert validate(_doc()) == []

    def test_missing_schema_flagged(self):
        doc = _doc()
        del doc["schema"]
        assert validate(doc)

    def test_build_refuses_invalid(self):
        entry = array_entry(1, (2,), 2, {0: 1.0})
        entry["bitmap"] = "zz"  # not hex
        with pytest.raises(CheckpointError, match="refusing"):
            build_checkpoint([entry], [], epoch=0)

    def test_restore_refuses_invalid(self):
        doc = _doc()
        doc["arrays"] = "nope"
        with pytest.raises(CheckpointError, match="invalid checkpoint"):
            CkptRestore(doc)


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        doc = _doc()
        path = str(tmp_path / "ckpt.json")
        save(doc, path)
        assert load(path) == doc

    def test_load_dir_joins_latest(self, tmp_path):
        doc = _doc()
        save(doc, str(tmp_path / LATEST))
        assert load(str(tmp_path)) == doc

    def test_load_dir_without_latest_is_structured(self, tmp_path):
        with pytest.raises(CheckpointError):
            load(str(tmp_path))


class TestWriterPacing:
    def test_interval_pacing(self):
        w = CkptWriter(CkptSpec(dir="/tmp/x", interval_s=1.0))
        assert not w.due(100.0)   # first call arms the timer
        assert not w.due(100.5)
        assert w.due(101.0)

    def test_event_pacing(self):
        w = CkptWriter(CkptSpec(dir="/tmp/x", every_events=10))
        assert not w.due_event(0)
        assert not w.due_event(5)
        assert w.due_event(10)
        assert w.due_event(20)

    def test_event_pacing_off_by_default(self):
        w = CkptWriter(CkptSpec(dir="/tmp/x"))
        assert not w.due_event(10)


class TestWriterSnapshot:
    def test_snapshot_writes_numbered_and_latest(self, tmp_path):
        spec = CkptSpec(dir=str(tmp_path / "ckpt"))
        w = CkptWriter(spec, fingerprint={"backend": "sim",
                                          "parallelism": 2})
        p0 = w.snapshot([(1, (2, 2), 2, {0: 1.0})], {0}, 2)
        p1 = w.snapshot([(1, (2, 2), 2, {0: 1.0, 3: 4.0})], {0, 1}, 2)
        assert os.path.basename(p0) == "ckpt-000000.json"
        assert os.path.basename(p1) == "ckpt-000001.json"
        assert load(os.path.join(spec.dir, LATEST)) == load(p1)
        assert w.stats() == {"snapshots": 2, "elements": 2,
                             "dir": spec.dir}

    def test_inactive_writer_reports_none(self):
        w = CkptWriter(CkptSpec(dir="/tmp/x"))
        assert w.stats() is None


class TestRestore:
    def test_ordinals_follow_allocation_order(self):
        e2 = array_entry(7, (2,), 2, {1: 9.0})
        e1 = array_entry(3, (2, 2), 2, {0: 1.0, 3: 4.0})
        doc = build_checkpoint([e2, e1], [], epoch=0)  # unsorted on seq
        r = CkptRestore(doc)
        assert r.ordinals() == [1, 2]
        dims, elements = r.array(1)     # lowest seq first
        assert dims == (2, 2)
        assert elements == {0: 1.0, 3: 4.0}
        assert r.array(2) == ((2,), {1: 9.0})
        assert r.array(3) is None
        assert r.total_elements == 3

    def test_identity_properties(self):
        r = CkptRestore(_doc())
        assert r.source == "function main() { return 1; }"
        assert r.entry == "main"
        assert r.args == (8,)
        assert r.backend == "sim"
        assert r.parallelism == 2
        assert r.id == ckpt_id(_doc())

    def test_page_size_is_advisory(self):
        # The restore flattens pages back to offsets; the resuming run
        # re-derives pagination at its own width, so the page size the
        # snapshot was written with must not leak into the view.
        a = array_entry(1, (2, 2), 1, {0: 1.0, 3: 4.0})
        b = array_entry(1, (2, 2), 4, {0: 1.0, 3: 4.0})
        ra = CkptRestore(build_checkpoint([a], [], epoch=0))
        rb = CkptRestore(build_checkpoint([b], [], epoch=0))
        assert ra.array(1) == rb.array(1)
