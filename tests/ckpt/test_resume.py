"""API-level checkpoint → resume round trips.

The crash-restart driver (:mod:`repro.ckpt.crashtest`) kills real
processes; these tests pin the same contract at the Python API level
where it is cheap enough for tier-1: a resumed run reproduces the exact
value at the same width *and* at a different width, the snapshot writer
stays zero-cost when absent, and the failure modes (no embedded source,
missing checkpoint file) are structured errors.
"""

import os

import pytest

from repro.api import compile_source
from repro.backend import get_backend
from repro.ckpt import (CheckpointError, CkptRestore, CkptSpec,
                        CkptWriter, build_checkpoint, load,
                        program_section, resolve_ckpt_path, resume)

SWEEP = """
function main(n) {
    B = matrix(n, n);
    for j = 1 to n { B[1, j] = 1.0 * j; }
    for i = 2 to n {
        for j = 1 to n { B[i, j] = B[i - 1, j] * 0.5 + 1.0; }
    }
    s = 0.0;
    for j = 1 to n { next s = s + B[n, j]; }
    return s;
}
"""

N = 8


def _checkpointed_run(tmp_path, every_events=25):
    """One sim run that leaves snapshots behind; returns (result, dir)."""
    ckpt_dir = str(tmp_path / "ckpt")
    program = compile_source(SWEEP)
    writer = CkptWriter(
        CkptSpec(dir=ckpt_dir, every_events=every_events),
        fingerprint={"backend": "sim", "parallelism": 2},
        program=program_section(SWEEP), args=(N,))
    result = get_backend("sim").run(program, (N,), parallelism=2,
                                    ckpt=writer)
    return result, ckpt_dir


class TestResume:
    def test_same_width_reproduces_value(self, tmp_path):
        original, ckpt_dir = _checkpointed_run(tmp_path)
        assert original.ckpt and original.ckpt["snapshots"] >= 1
        res, _, restore = resume(ckpt_dir, parallelism=2)
        assert res.value == original.value
        assert restore.total_elements >= 1

    def test_different_width_reproduces_value(self, tmp_path):
        original, ckpt_dir = _checkpointed_run(tmp_path)
        res, _, _ = resume(ckpt_dir, parallelism=3)
        assert res.value == original.value
        assert res.parallelism == 3

    def test_resume_defaults_to_snapshot_identity(self, tmp_path):
        original, ckpt_dir = _checkpointed_run(tmp_path)
        res, _, _ = resume(ckpt_dir)  # backend + width from the snapshot
        assert res.backend == "sim"
        assert res.parallelism == 2
        assert res.value == original.value

    def test_resumed_run_can_rearm_checkpointing(self, tmp_path):
        _, ckpt_dir = _checkpointed_run(tmp_path)
        spec = CkptSpec(dir=str(tmp_path / "ckpt2"), every_events=25)
        res, _, _ = resume(ckpt_dir, ckpt=spec)
        assert res.ckpt and res.ckpt["dir"] == spec.dir
        assert os.path.exists(os.path.join(spec.dir, "latest.json"))

    def test_sourceless_checkpoint_is_structured(self, tmp_path):
        doc = build_checkpoint([], [], epoch=0,
                               program=program_section(None))
        restore = CkptRestore(doc)
        with pytest.raises(CheckpointError, match="source"):
            resume(restore)

    def test_missing_path_is_structured(self, tmp_path):
        with pytest.raises(CheckpointError):
            resolve_ckpt_path(str(tmp_path / "nope.json"))


class TestZeroCost:
    def test_no_writer_no_ckpt_section(self):
        program = compile_source(SWEEP)
        res = get_backend("sim").run(program, (N,), parallelism=2)
        assert res.ckpt is None

    def test_writer_does_not_perturb_modeled_time(self, tmp_path):
        # Snapshots happen at event boundaries in host code; the
        # modeled machine must not see them.
        program = compile_source(SWEEP)
        clean = get_backend("sim").run(program, (N,), parallelism=2)
        ckpt, _ = _checkpointed_run(tmp_path)
        assert ckpt.time_us == clean.time_us
        assert ckpt.value == clean.value


class TestLatestPointer:
    def test_resume_consumes_the_newest_snapshot(self, tmp_path):
        _, ckpt_dir = _checkpointed_run(tmp_path)
        names = sorted(n for n in os.listdir(ckpt_dir)
                       if n.startswith("ckpt-"))
        assert len(names) >= 2  # pacing produced a history
        latest = load(os.path.join(ckpt_dir, "latest.json"))
        newest = load(os.path.join(ckpt_dir, names[-1]))
        assert latest == newest
