"""Tests for the sequential reference interpreter."""

import pytest

from repro.common.errors import (
    BoundsViolation,
    ExecutionError,
    SingleAssignmentViolation,
)
from repro.lang.parser import parse
from repro.lang.semantics import analyze
from repro.baseline.sequential import run_sequential


def run(src, args=()):
    tree = parse(src)
    analyze(tree)
    return run_sequential(tree, args)


class TestValues:
    def test_scalar(self):
        assert run("function main() { return 6 * 7; }").value == 42

    def test_array_fill(self):
        src = """
        function main(n) {
            A = matrix(n, n);
            for i = 1 to n { for j = 1 to n { A[i, j] = i * 10 + j; } }
            return A;
        }
        """
        v = run(src, (4,)).value
        assert v[2, 3] == 23
        assert v.dims == (4, 4)

    def test_reduction(self):
        src = """
        function main(n) {
            s = 0;
            for i = 1 to n { next s = s + i * i; }
            return s;
        }
        """
        assert run(src, (10,)).value == 385

    def test_next_sees_old_values(self):
        src = """
        function main(n) {
            a = 0;
            b = 1;
            for i = 1 to n { next a = b; next b = a + b; }
            return a;
        }
        """
        assert run(src, (10,)).value == 55

    def test_while(self):
        src = """
        function main(n) {
            s = 1;
            while s < n { next s = s * 3; }
            return s;
        }
        """
        assert run(src, (50,)).value == 81

    def test_recursion(self):
        src = """
        function fib(n) { return if n < 2 then n else fib(n - 1) + fib(n - 2); }
        function main() { return fib(14); }
        """
        assert run(src).value == 377

    def test_descending(self):
        src = """
        function main(n) {
            A = array(n);
            A[n] = 0;
            for i = n - 1 downto 1 { A[i] = A[i + 1] + 1; }
            return A[1];
        }
        """
        assert run(src, (7,)).value == 6

    def test_conditionals(self):
        src = """
        function sign(x) {
            if x > 0 { return 1; } else if x < 0 { return -1; } else { return 0; }
        }
        function main(a) { return sign(a) * 100 + sign(-a); }
        """
        assert run(src, (5,)).value == 99


class TestFaults:
    def test_single_assignment(self):
        src = """
        function main() {
            A = array(3);
            A[2] = 1;
            A[2] = 2;
            return A;
        }
        """
        with pytest.raises(SingleAssignmentViolation):
            run(src)

    def test_bounds(self):
        src = "function main() { A = array(3); A[4] = 1; return A; }"
        with pytest.raises(BoundsViolation):
            run(src)

    def test_read_before_write(self):
        src = "function main() { A = array(3); return A[1]; }"
        with pytest.raises(ExecutionError):
            run(src)

    def test_recursion_depth_guard(self):
        src = """
        function down(n) { return down(n + 1); }
        function main() { return down(0); }
        """
        with pytest.raises(ExecutionError):
            run(src)


class TestCostModel:
    def test_time_grows_with_work(self):
        src = """
        function main(n) {
            s = 0.0;
            for i = 1 to n { next s = s + sqrt(1.0 * i); }
            return s;
        }
        """
        small = run(src, (10,))
        large = run(src, (100,))
        assert large.time_us > small.time_us * 5

    def test_float_ops_cost_more_than_int(self):
        int_run = run("""
        function main(n) {
            s = 0;
            for i = 1 to n { next s = s + i; }
            return s;
        }
        """, (100,))
        float_run = run("""
        function main(n) {
            s = 0.0;
            for i = 1 to n { next s = s + 1.0 * i; }
            return s;
        }
        """, (100,))
        assert float_run.time_us > int_run.time_us


class TestAgreementWithSimulator:
    """The sequential interpreter is the semantic oracle for the machine."""

    PROGRAMS = [
        ("""
         function main(n) {
             A = matrix(n, n);
             for i = 1 to n { for j = 1 to n { A[i, j] = i * j; } }
             s = 0;
             for i = 1 to n {
                 row = 0;
                 for j = 1 to n { next row = row + A[i, j]; }
                 next s = s + row;
             }
             return s;
         }
         """, (6,)),
        ("""
         function main(n) {
             B = array(n);
             B[1] = 1.0;
             for i = 2 to n { B[i] = B[i - 1] * 0.75 + 1.0; }
             return B[n];
         }
         """, (12,)),
        ("""
         function f(a, b) { return if a > b then a - b else b - a; }
         function main() { return f(3, 10) + f(10, 3); }
         """, ()),
    ]

    @pytest.mark.parametrize("src,args", PROGRAMS)
    def test_matches_pods(self, src, args):
        from repro.api import compile_source

        program = compile_source(src)
        seq = program.run_sequential(args)
        pods = program.run_pods(args, num_pes=2)
        assert seq.value == pytest.approx(pods.value)
