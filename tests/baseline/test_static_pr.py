"""Tests for the Pingali & Rogers-style static baseline."""

import pytest

from repro.api import compile_source

FILL = """
function main(n) {
    A = matrix(n, n);
    for i = 1 to n {
        for j = 1 to n { A[i, j] = sqrt(1.0 * i * j) + 1.0; }
    }
    return A;
}
"""

SWEEP = """
function main(n) {
    B = matrix(n, n);
    for j = 1 to n { B[1, j] = 1.0 * j; }
    for i = 2 to n {
        for j = 1 to n { B[i, j] = B[i - 1, j] + 1.0; }
    }
    return B;
}
"""


class TestCorrectness:
    @pytest.mark.parametrize("pes", [1, 2, 4, 8])
    def test_fill_matches_sequential(self, pes):
        p = compile_source(FILL)
        seq = p.run_sequential((8,))
        st = p.run_static((8,), num_pes=pes)
        assert st.value.flat == seq.value.flat

    @pytest.mark.parametrize("pes", [1, 3, 5])
    def test_sweep_matches_sequential(self, pes):
        p = compile_source(SWEEP)
        seq = p.run_sequential((9,))
        st = p.run_static((9,), num_pes=pes)
        assert st.value.flat == seq.value.flat

    def test_scalar_program(self):
        p = compile_source("""
        function main(n) {
            s = 0;
            for i = 1 to n { next s = s + i; }
            return s;
        }
        """)
        assert p.run_static((10,), num_pes=4).value == 55


class TestTimingModel:
    def test_one_pe_close_to_sequential(self):
        p = compile_source(FILL)
        seq = p.run_sequential((12,))
        st = p.run_static((12,), num_pes=1)
        # Same cost model, no remote traffic on one PE.
        assert st.time_us == pytest.approx(seq.time_us, rel=0.05)

    def test_parallel_loop_speeds_up(self):
        p = compile_source(FILL)
        t1 = p.run_static((32,), num_pes=1).time_us
        t8 = p.run_static((32,), num_pes=8).time_us
        assert t1 / t8 > 3.0

    def test_pe_clocks_reported(self):
        p = compile_source(FILL)
        st = p.run_static((16,), num_pes=4)
        assert len(st.pe_times) == 4
        assert max(st.pe_times) == st.time_us

    def test_remote_misses_counted_for_cross_pe_reads(self):
        p = compile_source(SWEEP)
        st = p.run_static((16,), num_pes=4)
        assert st.remote_misses > 0

    def test_sweep_pipelines_rather_than_serializes(self):
        # With element-availability times, PE k+1 starts its rows after a
        # stagger, so the sweep is faster than fully serialized chunks.
        p = compile_source(SWEEP)
        st1 = p.run_static((24,), num_pes=1)
        st4 = p.run_static((24,), num_pes=4)
        # Not fully serial: some overlap must survive the transfers.
        assert st4.time_us < st1.time_us * 1.5

    def test_blocking_transfers_hurt_more_than_pods(self):
        # At a size where remote traffic matters, the PODS machine with
        # split-phase reads should beat the blocking static model on the
        # sweep's critical path... eventually; here we just require the
        # static model to charge visible transfer time.
        p = compile_source(SWEEP)
        st = p.run_static((16,), num_pes=4)
        seq = p.run_sequential((16,))
        assert st.time_us > seq.time_us / 4  # transfers bound the win
