"""Argument validation on the uniform ``Program.run`` / Backend surface.

Every bad-input path must fail *before* any substrate starts executing,
with a structured ``PodsError`` subclass naming the problem — never a
deep traceback out of a worker process or the simulator core.
"""

import pytest

from repro.api import compile_source
from repro.backend import (BackendConfigError, UnknownBackendError,
                           backend_names, backends, get_backend)
from repro.common.config import ParallelConfig, SimConfig
from repro.common.errors import PodsError

SOURCE = "function main(n) { return n * 2; }"


@pytest.fixture(scope="module")
def program():
    return compile_source(SOURCE)


class TestBackendNameResolution:
    def test_unknown_backend_lists_known_names(self, program):
        with pytest.raises(UnknownBackendError) as excinfo:
            program.run((3,), backend="cuda")
        msg = str(excinfo.value)
        assert "cuda" in msg
        for name in backend_names():
            assert name in msg

    def test_unknown_backend_is_a_pods_error_and_a_value_error(self):
        with pytest.raises(PodsError):
            get_backend("nope")
        with pytest.raises(ValueError):
            get_backend("nope")

    def test_aliases_resolve_to_the_same_backend(self):
        assert get_backend("pods") is get_backend("sim")
        assert get_backend("sequential") is get_backend("seq")
        assert get_backend("distributed") is get_backend("dist")

    def test_canonical_names_cover_all_five_substrates(self):
        assert backend_names() == ["sim", "parallel", "seq", "static",
                                   "dist"]
        assert [b.name for b in backends()] == backend_names()


class TestParallelismValidation:
    @pytest.mark.parametrize("backend", ["sim", "seq", "static",
                                         "parallel", "dist"])
    @pytest.mark.parametrize("bad", [0, -1, -8])
    def test_non_positive_counts_rejected(self, program, backend, bad):
        with pytest.raises(BackendConfigError, match=">= 1"):
            program.run((3,), backend=backend, parallelism=bad)

    @pytest.mark.parametrize("bad", [2.0, "4", True, (2,)])
    def test_non_int_counts_rejected(self, program, bad):
        with pytest.raises(BackendConfigError, match="must be an int"):
            program.run((3,), backend="sim", parallelism=bad)

    def test_validation_happens_before_execution(self, program):
        # The parallel backend must not fork workers for a bad count.
        with pytest.raises(BackendConfigError):
            program.run((3,), backend="parallel", parallelism=0)


class TestConfigTypeChecking:
    def test_sim_rejects_parallel_config(self, program):
        with pytest.raises(BackendConfigError, match="SimConfig"):
            program.run((3,), backend="sim",
                        config=ParallelConfig(workers=2))

    def test_parallel_rejects_sim_config(self, program):
        with pytest.raises(BackendConfigError, match="ParallelConfig"):
            program.run((3,), backend="parallel", config=SimConfig())

    def test_dist_rejects_parallel_config(self, program):
        with pytest.raises(BackendConfigError, match="DistConfig"):
            program.run((3,), backend="dist",
                        config=ParallelConfig(workers=2))

    def test_seq_takes_no_config(self, program):
        with pytest.raises(BackendConfigError, match="no config"):
            program.run((3,), backend="seq", config=SimConfig())

    def test_static_takes_sim_config(self, program):
        r = program.run((3,), backend="static", config=SimConfig())
        assert r.value == 6


class TestFaultArgumentValidation:
    @pytest.mark.parametrize("backend", ["seq", "static"])
    def test_faultless_backends_reject_fault_plans(self, program, backend):
        with pytest.raises(BackendConfigError,
                           match="does not support fault injection"):
            program.run((3,), backend=backend, faults="kill:worker=0")

    def test_sim_conflicting_explicit_plans_rejected(self, program):
        cfg = SimConfig(faults="drop:kind=page,count=1")
        with pytest.raises(BackendConfigError, match="conflicting"):
            program.run((3,), backend="sim", config=cfg,
                        faults="dup:count=1")

    def test_parallel_conflicting_explicit_plans_rejected(self, program):
        cfg = ParallelConfig(workers=2, fault_spec="kill:worker=0")
        with pytest.raises(BackendConfigError, match="conflicting"):
            program.run((3,), backend="parallel", config=cfg,
                        faults="kill:worker=1")

    def test_dist_conflicting_explicit_plans_rejected(self, program):
        from repro.common.config import DistConfig

        cfg = DistConfig(nodes=2, fault_spec="drop:kind=data,count=1")
        with pytest.raises(BackendConfigError, match="conflicting"):
            program.run((3,), backend="dist", config=cfg,
                        faults="node-kill:node=1")

    def test_explicit_plan_wins_over_environment(self, program, monkeypatch):
        """A faults= argument must shadow PODS_SIM_FAULTS entirely: the
        env spec here is garbage and would raise if it were parsed."""
        from repro.common.faultplan import SIM_ENV_VAR

        monkeypatch.setenv(SIM_ENV_VAR, "not!a@valid&spec")
        r = program.run((3,), backend="sim",
                        faults="drop:kind=page,count=0")
        assert r.value == 6


class TestRunBoundaryConfigValidation:
    """Timing/limit fields are re-validated at the ``run()`` boundary.

    The config dataclasses validate at construction, but a config
    mutated afterwards (``object.__setattr__`` on the frozen instance —
    exactly what a careless harness or a pickle round-trip can produce)
    must still raise :class:`BackendConfigError` *naming the field*,
    never a raw ``ValueError`` and never a supervisor hang on a NaN
    deadline comparison.
    """

    TABLE = [
        ("sim", "retransmit_timeout_us"),
        ("sim", "quiescence_us"),
        ("sim", "max_sim_time_us"),
        ("static", "retransmit_timeout_us"),
        ("static", "max_sim_time_us"),
        ("parallel", "timeout_s"),
        ("parallel", "poll_interval_s"),
        ("parallel", "spin_ceiling_s"),
        ("parallel", "read_timeout_s"),
        ("parallel", "retry_backoff_s"),
        ("dist", "timeout_s"),
        ("dist", "poll_interval_s"),
        ("dist", "connect_timeout_s"),
        ("dist", "read_timeout_s"),
        ("dist", "heartbeat_interval_s"),
        ("dist", "heartbeat_timeout_s"),
        ("dist", "retransmit_timeout_s"),
        ("dist", "retry_backoff_s"),
    ]

    @staticmethod
    def _config_for(backend):
        from repro.common.config import DistConfig

        if backend in ("sim", "static"):
            return SimConfig()
        if backend == "parallel":
            return ParallelConfig(workers=2)
        return DistConfig(nodes=2)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), 0,
                                     -1.0, "0.5"],
                             ids=["nan", "inf", "zero", "negative",
                                  "string"])
    @pytest.mark.parametrize("backend,fld", TABLE,
                             ids=[f"{b}-{f}" for b, f in TABLE])
    def test_bad_field_names_the_field(self, program, backend, fld, bad):
        cfg = self._config_for(backend)
        object.__setattr__(cfg, fld, bad)
        with pytest.raises(BackendConfigError, match=fld):
            program.run((3,), backend=backend, config=cfg)

    def test_constructors_reject_nan_outright(self):
        from repro.common.config import DistConfig

        with pytest.raises(ValueError, match="poll_interval_s"):
            ParallelConfig(workers=2, poll_interval_s=float("nan"))
        with pytest.raises(ValueError, match="heartbeat_timeout_s"):
            DistConfig(nodes=2, heartbeat_timeout_s=float("nan"))


class TestUnknownKeywordRejection:
    @pytest.mark.parametrize("backend", ["sim", "seq", "static"])
    def test_unknown_kwargs_rejected(self, program, backend):
        with pytest.raises(BackendConfigError, match="unknown arguments"):
            program.run((3,), backend=backend, bogus_flag=True)
