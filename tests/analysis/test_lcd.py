"""Tests for loop-carried-dependency detection."""

from repro.analysis.lcd import annotate_lcds
from repro.graph import build_graph, ir
from repro.lang.parser import parse


def loops_of(src):
    g = build_graph(parse(src))
    annotate_lcds(g)
    return {b.name.split(".")[-1]: b for b in g.loop_blocks()}, g


class TestScalarLcd:
    def test_reduction_is_lcd(self):
        loops, _ = loops_of("""
        function main(n) {
            s = 0;
            for i = 1 to n { next s = s + i; }
            return s;
        }
        """)
        assert loops["for_i"].has_lcd

    def test_while_is_always_lcd(self):
        loops, _ = loops_of("""
        function main(n) {
            s = 1;
            while s < n { next s = s * 2; }
            return s;
        }
        """)
        assert loops["while"].has_lcd


class TestArrayFlowDependence:
    def test_independent_elementwise_loop_has_no_lcd(self):
        loops, _ = loops_of("""
        function main(n) {
            A = matrix(n, n);
            for i = 1 to n {
                for j = 1 to n { A[i, j] = i + j; }
            }
            return A;
        }
        """)
        assert not loops["for_i"].has_lcd
        assert not loops["for_j"].has_lcd

    def test_sweep_is_lcd_at_swept_level_only(self):
        # The paper's conduction pattern: B[i,j] = f(B[i-1,j]).
        loops, _ = loops_of("""
        function main(n) {
            B = matrix(n, n);
            for j = 1 to n { B[1, j] = 1.0; }
            for i = 2 to n {
                for j = 1 to n { B[i, j] = B[i - 1, j] * 0.5; }
            }
            return B;
        }
        """)
        sweeps = [b for name, b in loops.items() if name == "for_i"]
        assert len(sweeps) == 1 and sweeps[0].has_lcd
        inner = [b for b in loops.values()
                 if b.name.endswith("for_i.for_j")]
        assert len(inner) == 1 and not inner[0].has_lcd

    def test_descending_sweep_is_lcd(self):
        loops, _ = loops_of("""
        function main(n) {
            B = array(n);
            B[n] = 1.0;
            for i = n - 1 downto 1 { B[i] = B[i + 1] * 0.5; }
            return B;
        }
        """)
        assert loops["for_i"].has_lcd

    def test_column_sweep_lcd_at_j(self):
        loops, _ = loops_of("""
        function main(n) {
            B = matrix(n, n);
            for i = 1 to n { B[i, 1] = 1.0; }
            for i = 1 to n {
                for j = 2 to n { B[i, j] = B[i, j - 1] + 1.0; }
            }
            return B;
        }
        """)
        # Row-independent at i (writes/reads aligned on position 0)...
        outer = [b for b in loops.values()
                 if b.name.count("for") == 1 and b.has_lcd is False]
        assert outer, "some i-loop must be LCD-free"
        # ... but carried along j.
        inner = next(b for b in loops.values() if b.name.endswith(".for_j"))
        assert inner.has_lcd

    def test_read_of_other_array_no_lcd(self):
        loops, _ = loops_of("""
        function main(n) {
            A = array(n);
            B = array(n);
            for i = 1 to n { A[i] = i; }
            for i = 1 to n { B[i] = A[i] * 2; }
            return B;
        }
        """)
        assert all(not b.has_lcd for b in loops.values())

    def test_read_of_shifted_other_array_no_lcd(self):
        # Reading A[i-1] is fine when the loop writes only B.
        loops, _ = loops_of("""
        function main(n) {
            A = array(n);
            B = array(n);
            for i = 1 to n { A[i] = i; }
            for i = 2 to n { B[i] = A[i - 1]; }
            return B;
        }
        """)
        assert all(not b.has_lcd for b in loops.values())

    def test_broadcast_row_read_is_lcd(self):
        # Every iteration reads row 1 while the loop writes row i.
        loops, _ = loops_of("""
        function main(n) {
            A = matrix(n, n);
            for j = 1 to n { A[1, j] = j; }
            for i = 2 to n {
                for j = 1 to n { A[i, j] = A[1, j] + i; }
            }
            return A;
        }
        """)
        sweep = next(b for b in loops.values()
                     if b.name.endswith("for_i"))
        assert sweep.has_lcd

    def test_non_affine_subscript_is_conservatively_lcd(self):
        loops, _ = loops_of("""
        function main(n) {
            A = array(n);
            A[1] = 1;
            for i = 2 to n { A[i] = A[(i * i) % n + 1]; }
            return A;
        }
        """)
        assert loops["for_i"].has_lcd

    def test_dependence_detected_across_block_boundary(self):
        # Write in the inner block, read of i-1 also in the inner block;
        # the dependence is on the *outer* index imported as a parameter.
        loops, _ = loops_of("""
        function main(n) {
            B = matrix(n, n);
            for j = 1 to n { B[1, j] = 1.0; }
            for i = 2 to n {
                for j = 1 to n {
                    B[i, j] = B[i - 1, j] + 1.0;
                }
            }
            return B;
        }
        """)
        sweep = next(b for b in loops.values()
                     if b.name.endswith("for_i") and b.has_lcd)
        assert sweep is not None

    def test_scaled_subscript_is_lcd(self):
        # A[2*i] vs A[i]: coefficient 2 never aligns with coefficient 1.
        loops, _ = loops_of("""
        function main(n) {
            A = array(2 * n);
            A[1] = 0;
            for i = 1 to n { A[2 * i] = A[i] + 1; }
            return A;
        }
        """)
        assert loops["for_i"].has_lcd


class TestAffineTracing:
    def test_affine_through_arithmetic(self):
        from repro.analysis.lcd import LcdAnalysis

        g = build_graph(parse("""
        function main(n) {
            A = array(n);
            for i = 1 to n { A[3 * i - 2] = i; }
            return A;
        }
        """))
        analysis = LcdAnalysis(g)
        loop = g.loop_blocks()[0]
        write = next(i for i in loop.body if isinstance(i, ir.WriteItem))
        form = analysis.affine_of(loop, write.indices[0], loop)
        assert form == (3, -2)
