"""The committed bench baseline must not shift while faults are off.

The reliable-delivery layer (:mod:`repro.sim.reliable`) claims to be
zero-cost when disabled; the fig10-style speed-up comparator in
``benchmarks/baselines/BENCH_simple_smoke.json`` is the long-lived
record that claim is checked against.  This test re-runs the baseline's
exact configuration and requires the modeled times to match to the
float: if a change legitimately shifts modeled time, re-emit the
baseline deliberately (``python -m repro.bench.harness --json`` + copy)
rather than letting it drift.
"""

import json
import os

import pytest

from repro.apps.simple_app import compile_simple
from repro.bench.harness import Sweeper

BASELINE = os.path.join(os.path.dirname(__file__), "..", "..",
                        "benchmarks", "baselines",
                        "BENCH_simple_smoke.json")


@pytest.fixture(scope="module")
def baseline():
    with open(BASELINE) as fh:
        return json.load(fh)


def test_modeled_times_match_committed_baseline(baseline):
    cfg = baseline["config"]
    assert cfg["app"] == "simple"
    program = compile_simple(conduction_only=cfg["conduction_only"])
    sweeper = Sweeper()
    args = (cfg["size"], cfg["steps"])
    for point in baseline["points"]:
        got = sweeper.run(program, args, point["pes"])
        assert got.time_us == point["time_us"], (
            f"{point['label']}: modeled time shifted "
            f"({got.time_us!r} != baseline {point['time_us']!r}) — "
            "faults-off runs must stay byte-identical; re-emit the "
            "baseline only for a deliberate model change")


def test_speedup_ratios_match(baseline):
    points = {p["pes"]: p for p in baseline["points"]}
    base = points[1]["time_us"]
    for pes, p in points.items():
        assert p["speedup"] == pytest.approx(base / p["time_us"])
