"""BENCH_<name>.json trajectory documents: schema, IO, comparator, CLI."""

from __future__ import annotations

import json

import pytest

from repro.bench import trajectory


def doc(**overrides):
    base = {
        "schema": trajectory.SCHEMA,
        "name": "smoke",
        "config": {"size": 8, "steps": 1},
        "wall_s": 1.5,
        "points": [
            {"label": "8x8@1", "pes": 1, "time_us": 1000.0,
             "speedup": 1.0, "critical_path_us": 1000.0,
             "utilization": {"EU": 0.7}},
            {"label": "8x8@2", "pes": 2, "time_us": 600.0,
             "speedup": 1.67, "critical_path_us": 580.0},
        ],
    }
    base.update(overrides)
    return base


class TestValidate:
    def test_valid_document(self):
        assert trajectory.validate(doc()) == []

    def test_make_doc_round_trip(self):
        d = trajectory.make_doc("smoke", {"size": 8},
                                doc()["points"], wall_s=0.1)
        assert d["schema"] == trajectory.SCHEMA
        assert trajectory.validate(d) == []

    @pytest.mark.parametrize("mutation, needle", [
        ({"schema": "bogus/v9"}, "schema"),
        ({"name": ""}, "name"),
        ({"config": {"nested": {"no": 1}}}, "scalar"),
        ({"wall_s": "fast"}, "wall_s"),
        ({"points": []}, "points"),
        ({"points": [{"label": "a", "pes": 0, "time_us": 1.0}]}, "pes"),
        ({"points": [{"label": "a", "pes": 1}]}, "time_us"),
        ({"points": [{"label": "", "pes": 1, "time_us": 1.0}]}, "label"),
        ({"points": [{"label": "a", "pes": 1, "time_us": 1.0},
                     {"label": "a", "pes": 2, "time_us": 1.0}]},
         "duplicate"),
        ({"points": [{"label": "a", "pes": 1, "time_us": 1.0,
                      "utilization": {"EU": "high"}}]}, "utilization"),
    ])
    def test_invalid_documents(self, mutation, needle):
        problems = trajectory.validate(doc(**mutation))
        assert problems
        assert any(needle in p for p in problems)

    def test_make_doc_rejects_invalid(self):
        with pytest.raises(ValueError, match="invalid bench document"):
            trajectory.make_doc("smoke", {}, [])

    # bool is an int subclass and json round-trips NaN/Infinity; neither
    # is a legitimate measurement, so every numeric field rejects them.
    @pytest.mark.parametrize("mutation, needle", [
        ({"wall_s": True}, "wall_s"),
        ({"wall_s": float("nan")}, "wall_s"),
        ({"points": [{"label": "a", "pes": True, "time_us": 1.0}]}, "pes"),
        ({"points": [{"label": "a", "pes": 1, "time_us": True}]},
         "time_us"),
        ({"points": [{"label": "a", "pes": 1, "time_us": float("nan")}]},
         "time_us"),
        ({"points": [{"label": "a", "pes": 1, "time_us": float("inf")}]},
         "time_us"),
        ({"points": [{"label": "a", "pes": 1, "time_us": 1.0,
                      "speedup": float("nan")}]}, "speedup"),
        ({"points": [{"label": "a", "pes": 1, "time_us": 1.0,
                      "events": True}]}, "events"),
        ({"points": [{"label": "a", "pes": 1, "time_us": 1.0,
                      "critical_path_us": float("-inf")}]},
         "critical_path_us"),
        ({"points": [{"label": "a", "pes": 1, "time_us": 1.0,
                      "utilization": {"EU": float("nan")}}]},
         "utilization"),
        ({"points": [{"label": "a", "pes": 1, "time_us": 1.0,
                      "utilization": {"EU": False}}]}, "utilization"),
    ])
    def test_bool_and_nonfinite_rejected(self, mutation, needle):
        problems = trajectory.validate(doc(**mutation))
        assert problems
        assert any(needle in p for p in problems)


class TestIO:
    def test_save_and_load(self, tmp_path):
        path = trajectory.save(doc(), directory=str(tmp_path))
        assert path.endswith("BENCH_smoke.json")
        loaded = trajectory.load(path)
        assert loaded == doc()

    def test_save_is_deterministic(self, tmp_path):
        a = trajectory.save(doc(), directory=str(tmp_path / "a"))
        b = trajectory.save(doc(), directory=str(tmp_path / "b"))
        assert open(a).read() == open(b).read()

    def test_load_rejects_invalid(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps(doc(schema="bogus")))
        with pytest.raises(ValueError):
            trajectory.load(str(path))


class TestCompare:
    def test_no_change(self):
        cmp = trajectory.compare(doc(), doc())
        assert cmp.ok
        assert not cmp.regressions and not cmp.improvements
        # wall_s is always surfaced (informational), even unchanged.
        assert any("wall_s" in n for n in cmp.notes)

    def test_no_change_without_wall_clock(self):
        prev, cur = doc(), doc()
        del prev["wall_s"], cur["wall_s"]
        cmp = trajectory.compare(prev, cur)
        assert cmp.ok
        assert "no change beyond tolerance" in cmp.render()

    def test_time_regression_flagged(self):
        cur = doc()
        cur["points"][0]["time_us"] = 1100.0     # +10% > 2% tolerance
        cmp = trajectory.compare(doc(), cur)
        assert not cmp.ok
        assert any("time_us" in r and "8x8@1" in r for r in cmp.regressions)
        assert "REGRESSION" in cmp.render()

    def test_speedup_shrink_flagged(self):
        cur = doc()
        cur["points"][1]["speedup"] = 1.2
        cmp = trajectory.compare(doc(), cur)
        assert any("speedup" in r for r in cmp.regressions)

    def test_improvement_not_a_regression(self):
        cur = doc()
        cur["points"][0]["time_us"] = 800.0
        cur["points"][0]["critical_path_us"] = 700.0
        cmp = trajectory.compare(doc(), cur)
        assert cmp.ok
        assert len(cmp.improvements) == 2

    def test_within_tolerance_is_quiet(self):
        cur = doc()
        cur["points"][0]["time_us"] = 1010.0     # +1% < 2%
        cmp = trajectory.compare(doc(), cur)
        assert cmp.ok and not cmp.improvements

    def test_config_change_downgrades_to_note(self):
        cur = doc(config={"size": 16, "steps": 1})
        cur["points"][0]["time_us"] = 4000.0
        cmp = trajectory.compare(doc(), cur)
        assert cmp.ok
        assert any("config changed" in n for n in cmp.notes)

    def test_new_and_disappeared_points_are_notes(self):
        cur = doc()
        cur["points"] = [cur["points"][0],
                         {"label": "8x8@4", "pes": 4, "time_us": 400.0}]
        cmp = trajectory.compare(doc(), cur)
        assert cmp.ok
        assert any("new point" in n for n in cmp.notes)
        assert any("disappeared" in n for n in cmp.notes)

    def test_wall_clock_never_gates(self):
        cur = doc(wall_s=30.0)                   # 20x slower host
        cmp = trajectory.compare(doc(), cur)
        assert cmp.ok
        assert any("never gates" in n for n in cmp.notes)

    def test_missing_baseline_wall_clock_is_an_explicit_note(self):
        # A baseline without wall_s used to make the wall-clock delta
        # vanish silently; the comparator must say the column is absent
        # instead of implying "no change".
        prev, cur = doc(), doc()
        del prev["wall_s"]
        cmp = trajectory.compare(prev, cur)
        assert cmp.ok
        assert any("no baseline wall_s" in n for n in cmp.notes)
        assert any("never gates" in n for n in cmp.notes)
        # The mirror image (baseline has it, current lost it) stays
        # quiet on wall_s — there is no current number to surface.
        cmp = trajectory.compare(cur, prev)
        assert not any("wall_s" in n for n in cmp.notes)

    def test_wall_clock_note_always_printed(self):
        # Even a within-tolerance wall_s delta is worth a note: the
        # fast-path work is invisible in modeled time, so wall_s is the
        # only place its effect shows up.
        cur = doc(wall_s=1.51)                   # +0.7% < 2% tolerance
        cmp = trajectory.compare(doc(), cur)
        assert cmp.ok
        assert any("wall_s" in n for n in cmp.notes)

    def test_nan_time_never_masks_a_regression(self):
        # A NaN current value must not silently compare as "no delta";
        # _rel_delta skips it (None) and validation refuses the doc.
        cur = doc()
        cur["points"][0]["time_us"] = float("nan")
        assert trajectory._rel_delta(1000.0, float("nan")) is None
        assert trajectory._rel_delta(True, 2.0) is None
        assert trajectory.validate(cur)

    def test_rtol_is_respected(self):
        cur = doc()
        cur["points"][0]["time_us"] = 1100.0
        assert trajectory.compare(doc(), cur, rtol=0.2).ok
        assert not trajectory.compare(doc(), cur, rtol=0.05).ok


class TestCli:
    def test_validate_ok(self, tmp_path, capsys):
        path = trajectory.save(doc(), directory=str(tmp_path))
        assert trajectory.main(["validate", path]) == 0
        assert "valid" in capsys.readouterr().out

    def test_validate_bad(self, tmp_path, capsys):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps(doc(name="")))
        assert trajectory.main(["validate", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_compare_regression_exit_codes(self, tmp_path, capsys):
        prev = trajectory.save(doc(), directory=str(tmp_path / "prev"))
        bad = doc()
        bad["points"][0]["time_us"] = 2000.0
        cur = trajectory.save(bad, directory=str(tmp_path / "cur"))
        assert trajectory.main(["compare", prev, cur]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        # --report-only (the CI mode) downgrades to exit 0.
        assert trajectory.main(["compare", prev, cur,
                                "--report-only"]) == 0

    def test_compare_clean_exit(self, tmp_path, capsys):
        prev = trajectory.save(doc(), directory=str(tmp_path / "prev"))
        cur = trajectory.save(doc(), directory=str(tmp_path / "cur"))
        assert trajectory.main(["compare", prev, cur]) == 0


class TestHarnessIntegration:
    def test_profiled_sweep_points_fit_schema(self):
        from repro.apps.simple_app import compile_simple
        from repro.bench.harness import profiled_sweep

        program = compile_simple()
        points = profiled_sweep(program, (4, 1), [1, 2], label="4x4")
        d = trajectory.make_doc("sweep_test", {"size": 4, "steps": 1},
                                points)
        assert trajectory.validate(d) == []
        assert [p["label"] for p in points] == ["4x4@1", "4x4@2"]
        assert points[0]["speedup"] == pytest.approx(1.0)
        for p in points:
            assert p["critical_path_us"] == pytest.approx(
                p["time_us"], rel=0.01)

    def test_harness_cli_writes_bench_json(self, tmp_path, capsys):
        from repro.bench.harness import main

        assert main(["--size", "4", "--steps", "1", "--pes", "1",
                     "--json", "--output-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        loaded = trajectory.load(str(tmp_path / "BENCH_simple_smoke.json"))
        assert loaded["config"]["size"] == 4
        assert len(loaded["points"]) == 1
