"""Tests for the bench harness text rendering and sweep memoization."""

from repro.bench.harness import Sweeper
from repro.bench.report import (
    percent,
    render_bar_chart,
    render_series_chart,
    render_table,
)


class TestTable:
    def test_alignment_and_floats(self):
        text = render_table(["PEs", "speed-up"], [[1, 1.0], [32, 18.912]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "18.912" in lines[3]
        # All lines equal width.
        assert len({len(l) for l in lines}) == 1

    def test_strings_pass_through(self):
        text = render_table(["a"], [["hello"]])
        assert "hello" in text


class TestBarChart:
    def test_scaled_to_peak(self):
        text = render_bar_chart(["EU", "MU"], [1.0, 0.5], width=10)
        eu, mu = text.splitlines()
        assert eu.count("#") == 10
        assert mu.count("#") == 5

    def test_zero_values(self):
        text = render_bar_chart(["x"], [0.0])
        assert "0.00" in text


class TestSeriesChart:
    def test_contains_legend_and_axis(self):
        text = render_series_chart([1, 2, 4], {"a": [1.0, 2.0, 4.0]})
        assert "legend: * a" in text
        assert "1  2  4" in text

    def test_none_gaps_tolerated(self):
        text = render_series_chart([1, 2, 4],
                                   {"a": [1.0, None, 4.0],
                                    "b": [None, None, None]})
        assert "legend" in text

    def test_marks_distinct_per_series(self):
        text = render_series_chart([1, 2], {"a": [1.0, 1.0],
                                            "b": [2.0, 2.0]})
        assert "* a" in text and "o b" in text


class TestPercent:
    def test_format(self):
        assert percent(0.5) == "50.0%"
        assert percent(0.123) == "12.3%"


class TestSweeper:
    SRC = """
    function main(n) {
        A = array(n);
        for i = 1 to n { A[i] = i; }
        s = 0;
        for i = 1 to n { next s = s + A[i]; }
        return s;
    }
    """

    def test_memoizes(self):
        from repro.api import compile_source

        sweeper = Sweeper()
        program = compile_source(self.SRC)
        p1 = sweeper.run(program, (8,), 2, key="t")
        p2 = sweeper.run(program, (8,), 2, key="t")
        assert p1 is p2  # cached object, no re-simulation

    def test_distinct_configs_distinct_points(self):
        from repro.api import compile_source

        sweeper = Sweeper()
        program = compile_source(self.SRC)
        a = sweeper.run(program, (8,), 2, key="t")
        b = sweeper.run(program, (8,), 2, key="t", cache_enabled=False)
        assert a is not b

    def test_speedups_relative_to_one_pe(self):
        from repro.api import compile_source

        sweeper = Sweeper()
        program = compile_source(self.SRC)
        s = sweeper.speedups(program, (32,), [1, 2], key="t")
        assert s[1] == 1.0
        assert s[2] > 0


class TestFigures:
    def test_reproduce_fig10_reduced(self):
        from repro.bench.figures import reproduce

        fig = reproduce("fig10")
        assert "speed-up" in fig.text
        assert fig.data[16][1] == 1.0
        assert fig.data[16][4] > 1.5

    def test_unknown_figure(self):
        import pytest as _pytest

        from repro.bench.figures import reproduce

        with _pytest.raises(ValueError):
            reproduce("fig99")

    def test_stats_to_dict_is_json_ready(self):
        import json

        from repro.api import compile_source

        program = compile_source("""
        function main(n) {
            A = array(n);
            for i = 1 to n { A[i] = i; }
            return A[n];
        }
        """)
        stats = program.run_pods((16,), num_pes=2).stats
        data = stats.to_dict()
        json.dumps(data)  # must serialize
        assert data["num_pes"] == 2
        assert 0 <= data["utilization"]["EU"] <= 1


class TestReducedFigures:
    def test_fig8_reduced(self):
        from repro.bench.figures import figure8

        fig = figure8(pe_counts=(1, 2), size=8, steps=1)
        assert "EU" in fig.text
        # EU dominates at both points.
        for pes, util in fig.data.items():
            assert util["EU"] == max(util.values())

    def test_fig9_reduced(self):
        from repro.bench.figures import figure9

        fig = figure9(pe_counts=(1, 4), sizes=(8,), steps=1)
        assert fig.data[8][1] > fig.data[8][4]

    def test_figures_share_sweeper_cache(self):
        from repro.bench.figures import figure10
        from repro.bench.harness import Sweeper

        sweeper = Sweeper()
        figure10(pe_counts=(1, 2), sizes=(8,), steps=1, sweeper=sweeper)
        cached = len(sweeper._cache)
        figure10(pe_counts=(1, 2), sizes=(8,), steps=1, sweeper=sweeper)
        assert len(sweeper._cache) == cached  # second run fully cached
