"""Tests for the n-body all-pairs app."""

import pytest

from repro.apps.nbody import compile_nbody
from repro.common.config import MachineConfig, SimConfig


@pytest.fixture(scope="module")
def nbody():
    return compile_nbody()


class TestNbody:
    def test_backends_agree(self, nbody):
        seq = nbody.run_sequential((10, 2))
        assert nbody.run_pods((10, 2), num_pes=1).value == \
            pytest.approx(seq.value, rel=1e-12)
        assert nbody.run_pods((10, 2), num_pes=3).value == \
            pytest.approx(seq.value, rel=1e-12)
        assert nbody.run_static((10, 2), num_pes=3).value == \
            pytest.approx(seq.value, rel=1e-12)

    def test_partitioning_shape(self, nbody):
        # Force and update loops distribute; the pair reduction and the
        # time loop stay local.
        report = nbody.partition_report
        assert len(report.distributed) >= 2
        assert "main.for_t" in report.local_lcd

    def test_small_bodies_fit_one_page_no_speedup(self, nbody):
        # A 12-element array is one 32-element page: PE0 owns everything
        # and distribution is a no-op -- the ownership math made that
        # decision, not an accident.
        r1 = nbody.run_pods((12, 1), num_pes=1)
        r4 = nbody.run_pods((12, 1), num_pes=4)
        assert r1.finish_time_us / r4.finish_time_us < 1.2

    def test_speedup_with_fine_pages(self, nbody):
        cfg1 = SimConfig(machine=MachineConfig(num_pes=1, page_size=4))
        cfg4 = SimConfig(machine=MachineConfig(num_pes=4, page_size=4))
        r1 = nbody.run_pods((16, 2), num_pes=1, config=cfg1)
        r4 = nbody.run_pods((16, 2), num_pes=4, config=cfg4)
        assert r1.value == pytest.approx(r4.value, rel=1e-12)
        assert r1.finish_time_us / r4.finish_time_us > 1.8

    def test_energy_deterministic_across_steps(self, nbody):
        a = nbody.run_sequential((10, 3)).value
        b = nbody.run_sequential((10, 3)).value
        assert a == b
        assert a > 0
