"""Tests for the Livermore-style kernels: cross-backend agreement and
the partitioning regime each kernel must land in."""

import pytest

from repro.apps.livermore import (
    PARALLEL_KERNELS,
    SEQUENTIAL_KERNELS,
    compile_kernel,
    kernel_names,
)


@pytest.fixture(scope="module")
def compiled():
    return {name: compile_kernel(name) for name in kernel_names()}


class TestAgreement:
    @pytest.mark.parametrize("name", kernel_names())
    def test_pods_matches_sequential(self, name, compiled):
        program = compiled[name]
        oracle = program.run_sequential((24,)).value
        for pes in (1, 4):
            assert program.run_pods((24,), num_pes=pes).value == \
                pytest.approx(oracle, rel=1e-12)

    @pytest.mark.parametrize("name", kernel_names())
    def test_static_matches_sequential(self, name, compiled):
        program = compiled[name]
        oracle = program.run_sequential((24,)).value
        assert program.run_static((24,), num_pes=4).value == \
            pytest.approx(oracle, rel=1e-12)


class TestPartitioningRegimes:
    @pytest.mark.parametrize("name", sorted(PARALLEL_KERNELS))
    def test_parallel_kernels_distribute_compute_loop(self, name, compiled):
        program = compiled[name]
        # The x-computing loop must be distributed.
        distributed = [b for b in program.graph.loop_blocks()
                       if b.distributed]
        assert distributed, f"{name}: nothing distributed"

    @pytest.mark.parametrize("name", sorted(SEQUENTIAL_KERNELS))
    def test_sequential_kernels_keep_chain_local(self, name, compiled):
        program = compiled[name]
        lcd_loops = [b for b in program.graph.loop_blocks() if b.has_lcd]
        assert lcd_loops, f"{name}: LCD not detected"
        assert all(not b.distributed for b in lcd_loops)

    def test_tridiag_chain_detected_via_array_dependence(self, compiled):
        program = compiled["tridiag"]
        chain = next(b for b in program.graph.loop_blocks()
                     if b.has_lcd and not b.carried_names)
        assert chain is not None  # LCD from x[i-1], not from a next-var


class TestSpeedupRegimes:
    def test_flop_heavy_kernel_speeds_up(self, compiled):
        # eos has enough arithmetic per element to amortize distribution.
        program = compiled["eos"]
        t1 = program.run_pods((96,), num_pes=1).finish_time_us
        t4 = program.run_pods((96,), num_pes=4).finish_time_us
        assert t1 / t4 > 1.4, f"eos: only {t1 / t4:.2f}x"

    def test_trivial_kernel_is_communication_bound(self, compiled):
        # first_diff does one subtraction per element: distribution
        # overhead swamps it — the machine must show that honestly
        # (no speedup), while results stay identical.
        program = compiled["first_diff"]
        t1 = program.run_pods((96,), num_pes=1).finish_time_us
        t4 = program.run_pods((96,), num_pes=4).finish_time_us
        assert t1 / t4 < 1.5

    def test_chain_kernels_do_not_benefit(self, compiled):
        program = compiled["first_sum"]
        t1 = program.run_pods((96,), num_pes=1).finish_time_us
        t4 = program.run_pods((96,), num_pes=4).finish_time_us
        # Some overhead is fine; meaningful speedup is impossible.
        assert t1 / t4 < 1.5
