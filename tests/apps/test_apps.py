"""Tests for the benchmark applications across every backend."""

import pytest

from repro.apps.matmul import compile_matmul, reference_matmul
from repro.apps.simple_app import compile_simple
from repro.apps.stencil import compile_stencil, reference_stencil


@pytest.fixture(scope="module")
def matmul():
    return compile_matmul()


@pytest.fixture(scope="module")
def matmul_checksum():
    return compile_matmul(checksum=True)


@pytest.fixture(scope="module")
def simple():
    return compile_simple()


@pytest.fixture(scope="module")
def conduction():
    return compile_simple(conduction_only=True)


@pytest.fixture(scope="module")
def stencil():
    return compile_stencil()


class TestMatmul:
    def test_values_match_reference(self, matmul):
        n = 6
        ref = reference_matmul(n)
        v = matmul.run_pods((n,), num_pes=2).value
        for i in range(1, n + 1):
            for j in range(1, n + 1):
                assert v[i, j] == pytest.approx(ref[i - 1][j - 1])

    @pytest.mark.parametrize("pes", [1, 3, 8])
    def test_checksum_stable_across_pes(self, matmul_checksum, pes):
        seq = matmul_checksum.run_sequential((8,))
        pods = matmul_checksum.run_pods((8,), num_pes=pes)
        assert pods.value == pytest.approx(seq.value, rel=1e-12)

    def test_partitioning_shape(self, matmul):
        report = matmul.partition_report
        assert any(name.endswith("for_i") for name in report.distributed)
        # The k reduction is an LCD loop below a marked level: local.
        k_loop = next(b for b in matmul.graph.loop_blocks()
                      if b.name.endswith("for_k"))
        assert k_loop.has_lcd and not k_loop.distributed

    def test_static_baseline_agrees(self, matmul_checksum):
        seq = matmul_checksum.run_sequential((8,))
        st = matmul_checksum.run_static((8,), num_pes=4)
        assert st.value == pytest.approx(seq.value, rel=1e-12)


class TestStencil:
    def test_matches_reference(self, stencil):
        assert stencil.run_pods((10, 3), num_pes=1).value == pytest.approx(
            reference_stencil(10, 3))

    @pytest.mark.parametrize("pes", [2, 5])
    def test_multi_pe_agrees(self, stencil, pes):
        expect = reference_stencil(12, 2)
        assert stencil.run_pods((12, 2), num_pes=pes).value == pytest.approx(expect)

    def test_sweeps_pipeline(self, stencil):
        # More sweeps cost less than proportionally on many PEs thanks to
        # element-wise overlap between sweeps (run-ahead).
        t2 = stencil.run_pods((12, 2), num_pes=4).finish_time_us
        t4 = stencil.run_pods((12, 4), num_pes=4).finish_time_us
        assert t4 < t2 * 2.0


class TestSimple:
    """SIMPLE: the paper's structural claims, checked mechanically."""

    def test_backends_agree(self, simple):
        seq = simple.run_sequential((12, 2))
        pods = simple.run_pods((12, 2), num_pes=3)
        static = simple.run_static((12, 2), num_pes=3)
        assert pods.value == pytest.approx(seq.value, rel=1e-12)
        assert static.value == pytest.approx(seq.value, rel=1e-12)

    @pytest.mark.parametrize("pes", [1, 2, 8])
    def test_value_independent_of_pes(self, simple, pes):
        base = simple.run_sequential((10, 2)).value
        assert simple.run_pods((10, 2), num_pes=pes).value == pytest.approx(
            base, rel=1e-12)

    def test_velocity_position_has_no_lcds(self, simple):
        # Paper: "Velocity_position has no LCDs ... and runs in parallel
        # very well."
        blocks = [b for b in simple.graph.loop_blocks()
                  if b.name.startswith("velocity_position")]
        assert blocks
        assert all(not b.has_lcd for b in blocks)

    def test_conduction_has_both_sweep_directions(self, simple):
        # Paper: "the large number of LCDs with both ascending and
        # descending for-loops."
        lcd_loops = [b for b in simple.graph.loop_blocks()
                     if b.name.startswith("conduction.") and b.has_lcd]
        assert any(not b.descending for b in lcd_loops)
        assert any(b.descending for b in lcd_loops)

    def test_conduction_sweep_inner_loops_distributed(self, simple):
        inner = [b for b in simple.graph.loop_blocks()
                 if b.name.startswith("conduction.for_k.") and b.distributed]
        assert inner, "sweep inner loops must carry the Range Filter"

    def test_time_loop_is_sequential(self, simple):
        time_loop = next(b for b in simple.graph.loop_blocks()
                         if b.name == "main.for_t")
        assert time_loop.has_lcd and not time_loop.distributed

    def test_energy_stays_bounded(self, simple):
        # Physics guardrails: a few steps must neither blow up nor go
        # negative.
        v1 = simple.run_sequential((8, 1)).value
        v4 = simple.run_sequential((8, 4)).value
        assert 0 < v1 < 1e6
        assert 0 < v4 < 1e6

    def test_speedup_on_multiple_pes(self, simple):
        t1 = simple.run_pods((16, 1), num_pes=1).finish_time_us
        t8 = simple.run_pods((16, 1), num_pes=8).finish_time_us
        assert t1 / t8 > 2.0

    def test_eu_dominates_units(self, simple):
        r = simple.run_pods((16, 1), num_pes=8)
        util = r.stats.utilizations()
        assert util["EU"] == max(util.values())


class TestConductionOnly:
    def test_runs_and_agrees(self, conduction):
        seq = conduction.run_sequential((12, 2))
        pods = conduction.run_pods((12, 2), num_pes=4)
        assert pods.value == pytest.approx(seq.value, rel=1e-12)

    def test_pods_one_pe_slower_than_sequential(self, conduction):
        # Section 5.3.4's direction: the parallel machinery costs
        # something even on one PE.
        seq = conduction.run_sequential((16, 1))
        pods = conduction.run_pods((16, 1), num_pes=1)
        assert pods.finish_time_us > seq.time_us
